// Package physical reproduces the paper's physical-implementation results
// (§6): the analytical critical-path model behind Table 2's clock periods
// and the floorplan model behind Figure 13's area comparison.
//
// The paper obtained these numbers from Synopsys Design Compiler synthesis
// in TSMC 65 nm plus memory-compiler SRAM extraction and manual
// floorplanning — none of which can run here. The substitution (documented
// in DESIGN.md) keeps the same structure: component delays published in the
// paper (248 ps SRAM read, 98 ps channel, ~40 ps decode overhead) compose
// per-architecture critical paths whose totals are Table 2's periods, and
// the performance simulator consumes only those periods, exactly as the
// paper's C++ simulator did.
package physical

import "repro/internal/router"

// Component delays in picoseconds, 65 nm. SRAM and link values are stated
// in §6.1; the remaining values are the unique decomposition consistent
// with Table 2 and the paper's qualitative statements (arbitration is the
// serialized control step of the non-speculative router; Spec-Accurate
// pays for its more accurate Switch-Next logic; NoX pays the ~40 ps decode
// plus the XOR switch's extra logical effort, §2.5).
const (
	// SRAMReadPs is the input buffer SRAM read delay (248 ps, §6.1).
	SRAMReadPs = 248.0
	// LinkPs is the 2 mm inter-tile channel delay (98 ps, §6.1).
	LinkPs = 98.0
	// SwitchArbPs is the switch arbitration delay serialized ahead of
	// traversal in the non-speculative router.
	SwitchArbPs = 230.0
	// XbarMuxPs is the multiplexer crossbar traversal delay, including the
	// time-critical select distribution across the fabric.
	XbarMuxPs = 344.0
	// XbarXORPs is the XOR-fabric traversal delay: the higher logical
	// effort of XOR gates costs ~30 ps over the mux crossbar, partially
	// offset by locally computed inhibition masks (§2.5).
	XbarXORPs = 374.0
	// SwitchNextPs is Spec-Accurate's extra Switch-Next filtering logic
	// relative to Spec-Fast's pass-through allocator.
	SwitchNextPs = 30.0
	// DecodePs is the NoX input decode overhead: one level of 2-input XOR
	// gates plus register mux (§6.1: "decoding logic in the NoX
	// architecture incurs approximately 40ps of overhead").
	DecodePs = 40.0
)

// ClockPeriodPs returns the architecture's clock period in picoseconds as
// the sum of its critical-path components.
func ClockPeriodPs(a router.Arch) float64 {
	switch a {
	case router.NonSpec:
		// Arbitrate, then traverse, within one cycle.
		return SRAMReadPs + SwitchArbPs + XbarMuxPs + LinkPs
	case router.SpecFast:
		// Arbitration fully off the critical path.
		return SRAMReadPs + XbarMuxPs + LinkPs
	case router.SpecAccurate:
		return SRAMReadPs + XbarMuxPs + SwitchNextPs + LinkPs
	case router.NoX:
		return SRAMReadPs + DecodePs + XbarXORPs + LinkPs
	default:
		panic("physical: unknown architecture")
	}
}

// ClockPeriodNs returns the clock period in nanoseconds (Table 2 units).
func ClockPeriodNs(a router.Arch) float64 { return ClockPeriodPs(a) / 1000 }

// FrequencyGHz returns the maximum operating frequency.
func FrequencyGHz(a router.Arch) float64 { return 1000 / ClockPeriodPs(a) }

// SpeedupVsNonSpec returns how much faster the architecture's clock is than
// the non-speculative baseline (§6.1 reports 33.3 %, 27.8 %, 21.1 %).
func SpeedupVsNonSpec(a router.Arch) float64 {
	return ClockPeriodPs(router.NonSpec)/ClockPeriodPs(a) - 1
}

// Floorplan dimensions (Figure 13), 65 nm. The layout follows Balfour &
// Dally's tiled-router plan: per-port input SRAMs stacked horizontally
// (bit-interleaved), the crossbar row beneath them with height set by the
// standard cell height and width by wire spacing; allocation, abort, and
// route-computation logic fits in the unused upper-left corner and does not
// grow the tile.
const (
	// CellHeightUm is the standard cell row height (§6.2: 2.52 um).
	CellHeightUm = 2.52
	// SRAMBlockWidthUm and SRAMBlockHeightUm are the memory-compiler
	// dimensions of one port's 4x64 b bit-interleaved input buffer.
	SRAMBlockWidthUm  = 163.95
	SRAMBlockHeightUm = 25.9
	// XbarWireRows is the number of standard-cell rows the crossbar and
	// its wiring occupy.
	XbarWireRows = 5
	// DecodeMaskWidthUm is the extra horizontal length of the NoX tile for
	// decode registers, XOR decode, and masking logic (§6.2: 28.2 um).
	DecodeMaskWidthUm = 28.2
)

// Plan is a router tile floorplan.
type Plan struct {
	Arch     router.Arch
	WidthUm  float64
	HeightUm float64
}

// AreaUm2 returns the tile area.
func (p Plan) AreaUm2() float64 { return p.WidthUm * p.HeightUm }

// Floorplan returns the tile plan of Figure 13 for the architecture. The
// conventional plan serves the non-speculative and both speculative
// routers (their control-logic differences hide in the spare corner); NoX
// adds the decode/mask column.
func Floorplan(a router.Arch) Plan {
	height := 5*SRAMBlockHeightUm + XbarWireRows*CellHeightUm
	width := SRAMBlockWidthUm
	if a == router.NoX {
		width += DecodeMaskWidthUm
	}
	return Plan{Arch: a, WidthUm: width, HeightUm: height}
}

// AreaOverheadVsConventional returns the NoX tile's area penalty relative
// to the conventional plan (§6.2 reports 17.2 %).
func AreaOverheadVsConventional() float64 {
	return Floorplan(router.NoX).AreaUm2()/Floorplan(router.NonSpec).AreaUm2() - 1
}
