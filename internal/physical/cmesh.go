package physical

import "repro/internal/router"

// This file models the physical consequences of the paper's future-work
// proposal (§8): evaluating NoX on a higher-radix concentrated mesh, which
// "may derive more benefit given their higher arbitration latencies, their
// longer channels, and the fixed cost of the NoX decoding hardware."
//
// Datapath describes one implementation point's component delays; the
// architecture critical paths compose them exactly as ClockPeriodPs does
// for the baseline mesh.
type Datapath struct {
	// SRAMReadPs is the input-buffer read delay.
	SRAMReadPs float64
	// LinkPs is the inter-router channel delay.
	LinkPs float64
	// SwitchArbPs is the arbitration delay serialized in the
	// non-speculative router; it grows with radix.
	SwitchArbPs float64
	// XbarMuxPs / XbarXORPs are the crossbar traversal delays; both grow
	// with radix (wider fabric, longer select/inhibit wires).
	XbarMuxPs float64
	XbarXORPs float64
	// SwitchNextPs is Spec-Accurate's extra allocator filtering.
	SwitchNextPs float64
	// DecodePs is the NoX input decode overhead — one level of 2-input XOR
	// gates plus a register mux, independent of radix: the "fixed cost"
	// §8 highlights.
	DecodePs float64
}

// MeshDatapath returns the baseline 8x8 mesh point (Table 2's inputs).
func MeshDatapath() Datapath {
	return Datapath{
		SRAMReadPs:   SRAMReadPs,
		LinkPs:       LinkPs,
		SwitchArbPs:  SwitchArbPs,
		XbarMuxPs:    XbarMuxPs,
		XbarXORPs:    XbarXORPs,
		SwitchNextPs: SwitchNextPs,
		DecodePs:     DecodePs,
	}
}

// CMeshDatapath returns the 4x4 concentrated mesh point (radix-8 routers,
// 64 cores). Scaling relative to the mesh:
//   - Channels double to 4 mm (half the routers tile the same die), so the
//     repeated-wire delay doubles.
//   - The arbiter sees 8 requesters instead of 5 (~log-depth growth) and
//     the 8x8 crossbar's select/inhibit distribution lengthens: both scale
//     by ~radix ratio in this first-order model.
//   - Spec-Accurate's Switch-Next filter widens with the request vector.
//   - The NoX decode stage is unchanged: still one 2-input XOR level.
func CMeshDatapath() Datapath {
	const radixScale = 1.45 // 8-input vs 5-input control structures
	return Datapath{
		SRAMReadPs:   SRAMReadPs,
		LinkPs:       2 * LinkPs,
		SwitchArbPs:  SwitchArbPs * radixScale,
		XbarMuxPs:    XbarMuxPs * radixScale,
		XbarXORPs:    XbarXORPs * radixScale,
		SwitchNextPs: SwitchNextPs * radixScale,
		DecodePs:     DecodePs, // fixed cost (§8)
	}
}

// ClockPeriodPs composes the architecture's critical path on this
// datapath, mirroring the baseline composition exactly.
func (d Datapath) ClockPeriodPs(a router.Arch) float64 {
	switch a {
	case router.NonSpec:
		return d.SRAMReadPs + d.SwitchArbPs + d.XbarMuxPs + d.LinkPs
	case router.SpecFast:
		return d.SRAMReadPs + d.XbarMuxPs + d.LinkPs
	case router.SpecAccurate:
		return d.SRAMReadPs + d.XbarMuxPs + d.SwitchNextPs + d.LinkPs
	case router.NoX:
		return d.SRAMReadPs + d.DecodePs + d.XbarXORPs + d.LinkPs
	default:
		panic("physical: unknown architecture")
	}
}

// ClockPeriodNs returns the period in nanoseconds.
func (d Datapath) ClockPeriodNs(a router.Arch) float64 { return d.ClockPeriodPs(a) / 1000 }

// NoXPenaltyVsSpecAccurate returns NoX's relative clock handicap against
// the best speculative competitor on this datapath. §8's hypothesis in one
// number: the handicap shrinks as radix and channel length grow, because
// the decode cost is fixed while everything else scales.
func (d Datapath) NoXPenaltyVsSpecAccurate() float64 {
	return d.ClockPeriodPs(router.NoX)/d.ClockPeriodPs(router.SpecAccurate) - 1
}
