// CMesh: the paper's future-work proposal (§8) as a runnable comparison.
// The same 64 cores are organized as the baseline 8x8 mesh and as a 4x4
// concentrated mesh with radix-8 routers and 4 mm channels; the run shows
// NoX's standing against Spec-Accurate improving at higher radix, where
// the decode hardware's fixed cost shrinks relative to the critical path
// and collisions grow deeper.
package main

import (
	"flag"
	"fmt"

	noxnet "repro"
)

func main() {
	rate := flag.Float64("rate", 700, "offered load (MB/s/core)")
	flag.Parse()

	fmt.Printf("64 cores at %.0f MB/s/core, uniform traffic\n\n", *rate)
	for _, kind := range []noxnet.SystemKind{noxnet.Mesh8x8, noxnet.CMesh4x4} {
		fmt.Println(kind)
		var noxNs, saNs float64
		for _, arch := range noxnet.Archs {
			res, err := noxnet.RunFuture(noxnet.FutureConfig{Kind: kind, Arch: arch, RateMBps: *rate})
			if err != nil {
				panic(err)
			}
			status := fmt.Sprintf("%7.2f ns", res.MeanLatencyNs)
			if res.Saturated {
				status = "saturated"
			}
			fmt.Printf("  %-16s %s (clock %.2f ns)\n", arch, status, res.PeriodNs)
			switch arch {
			case noxnet.NoX:
				noxNs = res.MeanLatencyNs
			case noxnet.SpecAccurate:
				saNs = res.MeanLatencyNs
			}
		}
		if saNs > 0 {
			fmt.Printf("  NoX latency / Spec-Accurate latency = %.3f\n\n", noxNs/saNs)
		}
	}
	fmt.Println("Lower ratios on the CMesh confirm §8's hypothesis: higher radix favors NoX.")
}
