// Application traffic: replay a synthesized cache-coherence trace (the
// paper's §5.2 methodology) on every router architecture and report the
// Figure 10/11 metrics for one workload.
package main

import (
	"flag"
	"fmt"

	noxnet "repro"
)

func main() {
	name := flag.String("workload", "tpcc", "application workload (barnes|fft|lu|ocean|radix|water|specjbb|tpcc)")
	cpuCycles := flag.Int64("cpu-cycles", 25000, "trace length in 3 GHz CPU cycles")
	flag.Parse()

	w, err := noxnet.WorkloadByName(*name)
	if err != nil {
		panic(err)
	}
	tr := noxnet.GenerateTrace(w, noxnet.Table1().Topo, *cpuCycles, 42)
	fmt.Printf("workload %s: %d packets, offered %.0f MB/s/node, dual physical networks\n\n",
		w.Name, len(tr.Events), tr.MeanInjectionMBps())

	fmt.Printf("%-16s %12s %12s %14s\n", "architecture", "latency", "pkt energy", "energy-delay^2")
	var noxED2, bestOtherED2 float64
	for _, arch := range noxnet.Archs {
		res := noxnet.RunApp(noxnet.AppConfig{Arch: arch, Trace: tr})
		fmt.Printf("%-16s %9.2f ns %9.1f pJ %11.0f pJ*ns^2\n",
			arch, res.MeanLatencyNs, res.PacketEnergyPJ, res.EnergyDelay2)
		if arch == noxnet.NoX {
			noxED2 = res.EnergyDelay2
		} else if bestOtherED2 == 0 || res.EnergyDelay2 < bestOtherED2 {
			bestOtherED2 = res.EnergyDelay2
		}
	}
	fmt.Printf("\nNoX energy-delay^2 vs best baseline: %+.1f%%\n", 100*(1-noxED2/bestOtherED2))
}
