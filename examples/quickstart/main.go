// Quickstart: build an 8x8 NoX mesh, send a handful of packets, and print
// their latencies — the smallest end-to-end use of the public API.
package main

import (
	"fmt"

	noxnet "repro"
)

func main() {
	// An 8x8 mesh of NoX routers with Table 1 defaults (4-flit buffers,
	// 64-bit links, XY routing).
	net := noxnet.NewNetwork(noxnet.NetworkConfig{Arch: noxnet.NoX})

	// Send a 1-flit control packet corner to corner and a 9-flit data
	// packet across the diagonal; payloads are verified bit-exactly on
	// delivery by the simulator itself.
	control := net.Inject(0, 63, 1, 0)
	data := net.Inject(56, 7, 9, 0)

	if !net.Drain(10_000) {
		panic("packets did not drain")
	}

	period := noxnet.ClockPeriodNs(noxnet.NoX)
	fmt.Printf("NoX clock period: %.2f ns\n", period)
	fmt.Printf("control packet 0->63: %d cycles = %.2f ns\n",
		control.Latency(), float64(control.Latency())*period)
	fmt.Printf("data packet 56->7:    %d cycles = %.2f ns\n",
		data.Latency(), float64(data.Latency())*period)

	// The same experiment on the sequential baseline, for contrast.
	base := noxnet.NewNetwork(noxnet.NetworkConfig{Arch: noxnet.NonSpec})
	p := base.Inject(0, 63, 1, 0)
	base.Drain(10_000)
	fmt.Printf("non-speculative 0->63: %d cycles = %.2f ns\n",
		p.Latency(), float64(p.Latency())*noxnet.ClockPeriodNs(noxnet.NonSpec))
}
