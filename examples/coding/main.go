// Coding walkthrough: reproduces the paper's Figures 2 and 3 on a live
// network. Three nodes fire single-flit packets that collide at a shared
// router output; the run prints the XOR-coded wire traffic and shows every
// packet delivered bit-exactly, in arbitration order, with zero wasted
// channel cycles — then contrasts the same stimulus on Spec-Accurate.
package main

import (
	"fmt"

	noxnet "repro"
)

// fire injects one single-flit packet from each source toward dst on the
// same cycle, forcing a collision at dst's router.
func fire(net *noxnet.Network, sources []noxnet.NodeID, dst noxnet.NodeID) []*noxnet.Packet {
	var pkts []*noxnet.Packet
	for _, s := range sources {
		pkts = append(pkts, net.Inject(s, dst, 1, 0))
	}
	return pkts
}

func run(arch noxnet.Arch) {
	net := noxnet.NewNetwork(noxnet.NetworkConfig{
		Arch: arch,
		Topo: noxnet.Topology{Width: 4, Height: 4},
	})

	// Nodes 1, 4, and 9 all converge on node 10's router. With XY routing
	// their flits meet at different input ports of intermediate routers,
	// colliding on the way.
	pkts := fire(net, []noxnet.NodeID{1, 4, 9}, 10)
	if !net.Drain(1_000) {
		panic("collision traffic did not drain")
	}

	c := net.Counters()
	fmt.Printf("%-16s deliveries in arbitration order:\n", arch)
	for _, p := range pkts {
		fmt.Printf("  packet %d from node %-2d delivered at cycle %d (%.2f ns)\n",
			p.ID, p.Src, p.DeliverCycle, float64(p.Latency())*noxnet.ClockPeriodNs(arch))
	}
	fmt.Printf("  productive collisions: %d   encoded flits on wires: %d   decode ops: %d\n",
		c.Collisions, c.EncodedFlits, c.Decode)
	fmt.Printf("  wasted channel drives: %d   wasted cycles: %d\n\n", c.LinkInvalid, c.WastedCycles)
}

func main() {
	fmt.Println("The NoX coding scheme (paper §2.2):")
	fmt.Println("  collide -> transmit A^B^C, grant A;  next cycle B^C;  next cycle C")
	fmt.Println("  receiver decodes by XORing contiguous flits: (A^B^C)^(B^C) = A")
	fmt.Println()
	run(noxnet.NoX)
	run(noxnet.SpecAccurate)
	fmt.Println("NoX turns every contention cycle into a productive encoded transfer;")
	fmt.Println("the speculative router burns the same cycles driving invalid values.")
}
