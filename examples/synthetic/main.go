// Synthetic sweep: a compact latency-throughput study on one traffic
// pattern — a single panel of the paper's Figure 8 — comparing all four
// router architectures as offered load rises to saturation.
package main

import (
	"flag"
	"fmt"

	noxnet "repro"
)

func main() {
	pattern := flag.String("pattern", "uniform", "traffic pattern (uniform|transpose|bitcomp|tornado|hotspot|selfsimilar|...)")
	flag.Parse()

	fmt.Printf("Latency vs offered load, %s traffic, 8x8 mesh (Figure 8 panel)\n\n", *pattern)
	fmt.Printf("%10s", "MB/s/node")
	for _, a := range noxnet.Archs {
		fmt.Printf(" %16s", a)
	}
	fmt.Println()

	base := noxnet.SyntheticConfig{
		Pattern:       *pattern,
		WarmupCycles:  1500,
		MeasureCycles: 5000,
		DrainCycles:   20000,
	}
	points, err := noxnet.SweepSynthetic(base, noxnet.DefaultRates(*pattern), noxnet.NewPool(0))
	if err != nil {
		panic(err)
	}
	for _, pt := range points {
		fmt.Printf("%10.0f", pt.RateMBps)
		for _, a := range noxnet.Archs {
			if r, ok := pt.Results[a]; ok && !r.Saturated {
				fmt.Printf(" %13.2f ns", r.MeanLatencyNs)
			} else if ok {
				fmt.Printf(" %16s", "saturated")
			} else {
				fmt.Printf(" %16s", "-")
			}
		}
		fmt.Println()
	}

	fmt.Println("\nMaximum sustained throughput (MB/s/node):")
	best := 0.0
	sat := map[noxnet.Arch]float64{}
	for _, pt := range points {
		for a, r := range pt.Results {
			if r.AcceptedMBps > sat[a] {
				sat[a] = r.AcceptedMBps
			}
		}
	}
	for _, a := range noxnet.Archs {
		fmt.Printf("  %-16s %7.0f\n", a, sat[a])
		if a != noxnet.NoX && sat[a] > best {
			best = sat[a]
		}
	}
	if best > 0 {
		fmt.Printf("  NoX vs best baseline: %+.1f%% (paper §5.1: up to +9.9%%)\n", 100*(sat[noxnet.NoX]/best-1))
	}
}
