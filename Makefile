GO ?= go

.PHONY: check build vet lint test race bench bench-json trace-smoke

## check: the CI gate — build, vet, static analysis, the full test suite
## under the race detector (the parallel experiment engine makes this
## mandatory), and the tracing smoke test.
check: build vet lint race trace-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: staticcheck and govulncheck when installed; each is skipped with a
## note otherwise, so check works on a bare toolchain.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: one pass over every paper-figure benchmark plus the kernel
## microbenchmarks (allocation counts included).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

## bench-json: run the benchmark suite and snapshot it to BENCH_<stamp>.json
## (name -> ns/op, allocs/op, custom metrics) so the perf trajectory is
## machine-tracked in version control. Committed snapshots are the baseline
## future PRs compare against.
bench-json:
	@tmp=$$(mktemp) && trap 'rm -f "$$tmp"' EXIT && \
	$(GO) test -run '^$$' -bench . -benchtime 1x . | tee "$$tmp" && \
	$(GO) run ./cmd/noxbench -in "$$tmp"

## trace-smoke: run noxtrace on a tiny mesh and validate that the emitted
## Chrome trace JSON parses and that every CSV exporter produces output.
trace-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/noxtrace -arch nox -width 4 -height 4 -rate 2200 -cycles 300 \
		-out "$$tmp/trace.json" -waveform "$$tmp/wf.txt" -routers-csv "$$tmp/routers.csv" \
		-heatmap-csv "$$tmp/heat.csv" -timeseries-csv "$$tmp/ts.csv" && \
	$(GO) run ./cmd/noxtrace -validate "$$tmp/trace.json" && \
	for f in wf.txt routers.csv heat.csv ts.csv; do \
		test -s "$$tmp/$$f" || { echo "trace-smoke: $$f is empty" >&2; exit 1; }; \
	done && \
	echo "trace-smoke: OK"
