GO ?= go

.PHONY: check build vet test race bench

## check: the CI gate — build, vet, and the full test suite under the race
## detector (the parallel experiment engine makes this mandatory).
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: one pass over every paper-figure benchmark plus the kernel
## microbenchmarks (allocation counts included).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
