GO ?= go

.PHONY: check build vet lint test race bench bench-json bench-compare bench-smoke trace-smoke fault-smoke fault-perm-smoke batch-smoke telemetry-smoke snapshot-smoke fuzz-smoke contract-check

## check: the CI gate — build, vet, static analysis, the full test suite
## under the race detector (the parallel experiment engine makes this
## mandatory), the event-horizon contract tests, the tracing,
## fault-injection (transient and permanent), batched-execution, live
## telemetry, and checkpoint/restore smoke tests, a short fuzz pass over
## the user-facing decoders, and a soft benchmark-regression check against
## the newest committed snapshot.
check: build vet lint race contract-check trace-smoke fault-smoke fault-perm-smoke batch-smoke telemetry-smoke snapshot-smoke fuzz-smoke bench-compare

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: staticcheck and govulncheck when installed; each is skipped with a
## note otherwise, so check works on a bare toolchain.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## contract-check: the event-horizon kernel's contract tests (build tag:
## contract) — the next-wake/quiescence API's oracle catches components that
## under-report their horizon or quiesce with latent work, and the real
## network components must run clean under it on every architecture.
contract-check:
	$(GO) test -tags contract -run 'TestContract' ./internal/sim ./internal/network

## bench: one pass over every paper-figure benchmark plus the kernel
## microbenchmarks (allocation counts included).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

## bench-json: run the benchmark suite and snapshot it to BENCH_<stamp>.json
## (name -> ns/op, allocs/op, custom metrics) so the perf trajectory is
## machine-tracked in version control. Committed snapshots are the baseline
## future PRs compare against.
bench-json:
	@tmp=$$(mktemp) && trap 'rm -f "$$tmp"' EXIT && \
	$(GO) test -run '^$$' -bench . -benchtime 1x . | tee "$$tmp" && \
	$(GO) run ./cmd/noxbench -in "$$tmp"

## bench-compare: run the benchmark suite once and diff it against the newest
## committed BENCH_*.json via `noxbench -compare`. The threshold is a
## deliberately generous 50%: `-benchtime 1x` single-iteration timings are
## noisy (machine load, turbo state), so only a gross slowdown should trip
## it. Slowdowns under noxbench's absolute noise floor (-floor, default
## 50µs) never trip regardless of percentage — nanosecond-scale benchmarks
## jitter past any relative threshold on timer granularity alone.
## Soft gate: a regression prints a loud warning but does not fail
## `make check` — timings from different machines are not comparable, and
## the committed snapshots are the authoritative record. Investigate any
## warning with a longer -benchtime run before trusting it.
bench-compare:
	@base=$$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1); \
	if [ -z "$$base" ]; then echo "bench-compare: no committed BENCH_*.json baseline, skipping"; exit 0; fi; \
	tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) test -run '^$$' -bench . -benchtime 1x . > "$$tmp/bench.txt" && \
	$(GO) run ./cmd/noxbench -in "$$tmp/bench.txt" -out "$$tmp/new.json" && \
	{ $(GO) run ./cmd/noxbench -compare -threshold 0.50 "$$base" "$$tmp/new.json" || \
	  { [ $$? -eq 1 ] && echo "bench-compare: WARNING: regression vs $$base (soft gate, check not failed)"; }; }

## bench-smoke: the cheapest end-to-end exercise of the benchmark tooling —
## run the three fastest benchmarks, snapshot them through noxbench
## (-allow-dirty: smoke runs happen on working trees), and -compare against
## the newest committed baseline at a deliberately loose threshold (200%,
## absolute floor still applies). This is a tooling pipeline check plus a
## gross-regression tripwire cheap enough for every push, not a perf gate —
## the committed BENCH_*.json snapshots remain the authoritative record.
bench-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	set -e; \
	$(GO) test -run '^$$' -bench 'Table1SystemParameters|Table2ClockPeriods|NetworkCycleSparse' \
		-benchtime 1x . | tee "$$tmp/bench.txt" && \
	$(GO) run ./cmd/noxbench -in "$$tmp/bench.txt" -out "$$tmp/smoke.json" -allow-dirty && \
	base=$$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1); \
	if [ -z "$$base" ]; then echo "bench-smoke: no committed BENCH_*.json baseline, skipping compare"; exit 0; fi; \
	$(GO) run ./cmd/noxbench -compare -threshold 2.0 "$$base" "$$tmp/smoke.json" && \
	echo "bench-smoke: OK"

## trace-smoke: run noxtrace on a tiny mesh and validate that the emitted
## Chrome trace JSON parses and that every CSV exporter produces output.
trace-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/noxtrace -arch nox -width 4 -height 4 -rate 2200 -cycles 300 \
		-out "$$tmp/trace.json" -waveform "$$tmp/wf.txt" -routers-csv "$$tmp/routers.csv" \
		-heatmap-csv "$$tmp/heat.csv" -timeseries-csv "$$tmp/ts.csv" && \
	$(GO) run ./cmd/noxtrace -validate "$$tmp/trace.json" && \
	for f in wf.txt routers.csv heat.csv ts.csv; do \
		test -s "$$tmp/$$f" || { echo "trace-smoke: $$f is empty" >&2; exit 1; }; \
	done && \
	echo "trace-smoke: OK"

## fault-smoke: run a small seeded fault campaign on every architecture
## under the race detector, once serial and once sharded, and require the
## two reports to be byte-identical — the standing proof that fault
## injection (and everything downstream of it) is deterministic and
## shard-invariant. Also fails on any UNDETECTED campaign: an injected
## fault must be caught by the invariant layer or masked by the protocol.
fault-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run -race ./cmd/noxfault -arch all -width 4 -height 4 -campaigns 2 \
		-cycles 800 -drain 10000 -watchdog 3000 -seed 0xF001 -shards 1 -out "$$tmp/serial.txt" && \
	$(GO) run -race ./cmd/noxfault -arch all -width 4 -height 4 -campaigns 2 \
		-cycles 800 -drain 10000 -watchdog 3000 -seed 0xF001 -shards 4 -out "$$tmp/sharded.txt" && \
	cmp "$$tmp/serial.txt" "$$tmp/sharded.txt" && \
	{ ! grep -q UNDETECTED "$$tmp/serial.txt" || { echo "fault-smoke: campaign left faults undetected" >&2; cat "$$tmp/serial.txt" >&2; exit 1; }; } && \
	echo "fault-smoke: OK"

## fault-perm-smoke: the permanent-fault degradation sweep on every
## architecture under the race detector — a mid-run link kill with
## end-to-end retransmission armed — run serial, sharded, and batched, with
## all three reports required byte-identical: the standing proof that hard
## faults, reconfiguration epochs, and retransmission are deterministic
## across every execution mode. Also fails on any UNDETECTED cell: every
## loss under a permanent fault must be accounted (delivered or retired
## undeliverable) with zero violations.
fault-perm-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run -race ./cmd/noxfault -arch all -width 4 -height 4 -degrade 2 -kill 400 \
		-cycles 800 -load 0.04 -drain 10000 -watchdog 3000 -seed 0xF001 -shards 1 -out "$$tmp/serial.txt" && \
	$(GO) run -race ./cmd/noxfault -arch all -width 4 -height 4 -degrade 2 -kill 400 \
		-cycles 800 -load 0.04 -drain 10000 -watchdog 3000 -seed 0xF001 -shards 4 -out "$$tmp/sharded.txt" && \
	$(GO) run -race ./cmd/noxfault -arch all -width 4 -height 4 -degrade 2 -kill 400 \
		-cycles 800 -load 0.04 -drain 10000 -watchdog 3000 -seed 0xF001 -batch -1 -out "$$tmp/batched.txt" && \
	cmp "$$tmp/serial.txt" "$$tmp/sharded.txt" && cmp "$$tmp/serial.txt" "$$tmp/batched.txt" && \
	{ ! grep -q UNDETECTED "$$tmp/serial.txt" || { echo "fault-perm-smoke: unaccounted loss under permanent faults" >&2; cat "$$tmp/serial.txt" >&2; exit 1; }; } && \
	echo "fault-perm-smoke: OK"

## batch-smoke: run a small sweep under the race detector, once serial and
## once through the batched lockstep kernel, and require the two CSVs to be
## byte-identical — the standing proof that cohort execution (shared route
## tables, slabs, flit pools, the bit-sliced/dense lockstep walks) changes
## wall-clock time only, never results.
batch-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run -race ./cmd/noxsweep -fast -pattern uniform -csv -parallel 1 \
		> "$$tmp/serial.csv" && \
	$(GO) run -race ./cmd/noxsweep -fast -pattern uniform -csv -parallel 1 -batch -1 \
		> "$$tmp/batched.csv" && \
	cmp "$$tmp/serial.csv" "$$tmp/batched.csv" && \
	echo "batch-smoke: OK"

## telemetry-smoke: boot noxsim with the live telemetry server on an
## ephemeral port, curl the endpoint surface (/metrics, /healthz,
## /debug/vars, /debug/pprof/) while the simulation runs, and validate the
## saved /metrics scrape parses as Prometheus text exposition via
## `noxtrace -validate-metrics`. The bound address is scraped from the
## plain "telemetry: serving on http://ADDR" stderr line.
telemetry-smoke:
	@tmp=$$(mktemp -d); pid=""; trap 'kill $$pid 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	set -e; \
	$(GO) build -o "$$tmp/noxsim" ./cmd/noxsim; \
	$(GO) build -o "$$tmp/noxtrace" ./cmd/noxtrace; \
	"$$tmp/noxsim" -http 127.0.0.1:0 -measure 1000000 >"$$tmp/stdout.txt" 2>"$$tmp/stderr.txt" & pid=$$!; \
	addr=""; \
	for i in $$(seq 1 100); do \
		addr=$$(sed -n 's|^telemetry: serving on http://||p' "$$tmp/stderr.txt" 2>/dev/null | head -n 1); \
		if [ -n "$$addr" ]; then break; fi; \
		kill -0 $$pid 2>/dev/null || { echo "telemetry-smoke: noxsim exited before serving" >&2; cat "$$tmp/stderr.txt" >&2; exit 1; }; \
		sleep 0.1; \
	done; \
	[ -n "$$addr" ] || { echo "telemetry-smoke: server never announced its address" >&2; cat "$$tmp/stderr.txt" >&2; exit 1; }; \
	curl -fsS "http://$$addr/metrics" > "$$tmp/metrics.txt"; \
	grep -q '^nox_cycles_total' "$$tmp/metrics.txt" || { echo "telemetry-smoke: /metrics missing nox_cycles_total" >&2; cat "$$tmp/metrics.txt" >&2; exit 1; }; \
	curl -fsS "http://$$addr/healthz" | grep -q '^ok$$'; \
	curl -fsS "http://$$addr/debug/vars" | grep -q '"memstats"'; \
	curl -fsS "http://$$addr/debug/pprof/" > /dev/null; \
	"$$tmp/noxtrace" -validate-metrics "$$tmp/metrics.txt"; \
	echo "telemetry-smoke: OK"

## snapshot-smoke: checkpoint/restore end to end under the race detector —
## interrupt a noxsim run via periodic -checkpoint, resume it with -restore,
## and require the resumed run's report to be byte-identical to the
## uninterrupted run's. Then do the warm-start equivalent with noxsweep: a
## -warmstart sweep that persists its warm images must render the same CSV
## as a second sweep that -restores them from the cache.
snapshot-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	set -e; \
	$(GO) run -race ./cmd/noxsim -arch nox -pattern uniform -rate 1400 \
		-warmup 1000 -measure 3000 > "$$tmp/straight.txt" && \
	$(GO) run -race ./cmd/noxsim -arch nox -pattern uniform -rate 1400 \
		-warmup 1000 -measure 3000 -checkpoint "$$tmp/sim.noxckpt" -checkpoint-every 1500 \
		> /dev/null && \
	$(GO) run -race ./cmd/noxsim -arch nox -pattern uniform -rate 1400 \
		-warmup 1000 -measure 3000 -restore "$$tmp/sim.noxckpt" > "$$tmp/resumed.txt" && \
	cmp "$$tmp/straight.txt" "$$tmp/resumed.txt" && \
	$(GO) run -race ./cmd/noxsweep -fast -pattern uniform -csv -parallel 1 \
		-warmstart -checkpoint "$$tmp/warm" > "$$tmp/warmed.csv" && \
	$(GO) run -race ./cmd/noxsweep -fast -pattern uniform -csv -parallel 1 \
		-restore "$$tmp/warm" > "$$tmp/cached.csv" && \
	cmp "$$tmp/warmed.csv" "$$tmp/cached.csv" && \
	echo "snapshot-smoke: OK"

## fuzz-smoke: a short native-fuzz pass over the user-facing decoders
## (noxtrace -validate, noxbench snapshot JSON, the binary snapshot image
## decoder, the JSON fault-campaign spec). The committed seed corpora
## always run under plain `go test`; this adds a little coverage-guided
## mutation on top without turning CI into a fuzz farm.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzValidateTrace$$' -fuzztime 10s ./cmd/noxtrace
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeSnapshot$$' -fuzztime 10s ./cmd/noxbench
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime 10s ./internal/snapshot
	$(GO) test -run '^$$' -fuzz '^FuzzParseSpec$$' -fuzztime 10s ./internal/fault
