// Command noxfuture runs the paper's §8 future-work study: the four router
// architectures on 64 cores organized as the baseline 8x8 mesh versus a
// 4x4 concentrated mesh with radix-8 routers and 4 mm channels. The
// hypothesis under test: NoX derives more benefit at higher radix because
// arbitration latencies and channels grow while its decode cost is fixed.
//
// Beyond the paper's two organizations, -systems adds the 16x16 (256-core)
// and 32x32 (1024-core) meshes that the sharded simulation kernel makes
// practical to sweep.
//
// Usage:
//
//	noxfuture
//	noxfuture -pattern selfsimilar -rates 400,800,1200
//	noxfuture -systems mesh16x16,mesh32x32 -rates 400,800
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/harness"
	"repro/internal/probe"
	"repro/internal/telemetry"
	"repro/internal/version"
)

func main() {
	var (
		pattern  = flag.String("pattern", "uniform", "traffic pattern over cores (uniform|selfsimilar|transpose|...)")
		ratesStr = flag.String("rates", "400,800,1200,1600,2000,2400", "comma-separated offered rates (MB/s/core)")
		seed     = flag.Uint64("seed", 0xF07E, "simulation seed")
		parallel = flag.Int("parallel", 0, "worker count for study points (0 = all CPUs, 1 = serial; output is identical)")
		systems  = flag.String("systems", "mesh8x8,cmesh4x4", "comma-separated systems: mesh8x8|cmesh4x4|mesh16x16|mesh32x32")
		shards   = flag.Int("shards", 0, "intra-simulation worker shards per point (0 = auto: large meshes shard on multicore; output is identical)")
	)
	tf := telemetry.AddFlags(flag.CommandLine)
	prof := probe.AddProfileFlags(flag.CommandLine)
	ver := version.Flag(flag.CommandLine)
	flag.Parse()
	version.ExitIf(*ver, "noxfuture")
	sess, err := tf.Start("noxfuture")
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxfuture:", err)
		os.Exit(1)
	}
	defer sess.Close()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxfuture:", err)
		os.Exit(1)
	}
	defer stopProf()
	pool, err := exp.PoolFromFlag(*parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxfuture:", err)
		os.Exit(1)
	}

	var rates []float64
	for _, f := range strings.Split(*ratesStr, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "noxfuture: bad rate:", err)
			os.Exit(1)
		}
		rates = append(rates, v)
	}

	kinds, err := harness.ParseSystemKinds(*systems)
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxfuture:", err)
		os.Exit(1)
	}

	st, err := harness.RunFutureStudyKinds(kinds, rates, *pattern, *seed, pool, *shards,
		harness.Telemetry{Progress: sess.Sampler(), NewRecorder: sess.NewRecorder})
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxfuture:", err)
		os.Exit(1)
	}
	fmt.Print(harness.FormatFutureStudy(st))
}
