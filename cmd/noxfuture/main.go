// Command noxfuture runs the paper's §8 future-work study: the four router
// architectures on 64 cores organized as the baseline 8x8 mesh versus a
// 4x4 concentrated mesh with radix-8 routers and 4 mm channels. The
// hypothesis under test: NoX derives more benefit at higher radix because
// arbitration latencies and channels grow while its decode cost is fixed.
//
// Usage:
//
//	noxfuture
//	noxfuture -pattern selfsimilar -rates 400,800,1200
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/harness"
	"repro/internal/probe"
)

func main() {
	var (
		pattern  = flag.String("pattern", "uniform", "traffic pattern over cores (uniform|selfsimilar|transpose|...)")
		ratesStr = flag.String("rates", "400,800,1200,1600,2000,2400", "comma-separated offered rates (MB/s/core)")
		seed     = flag.Uint64("seed", 0xF07E, "simulation seed")
		parallel = flag.Int("parallel", 0, "worker count for study points (0 = all CPUs, 1 = serial; output is identical)")
	)
	prof := probe.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxfuture:", err)
		os.Exit(1)
	}
	defer stopProf()
	pool, err := exp.PoolFromFlag(*parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxfuture:", err)
		os.Exit(1)
	}

	var rates []float64
	for _, f := range strings.Split(*ratesStr, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "noxfuture: bad rate:", err)
			os.Exit(1)
		}
		rates = append(rates, v)
	}

	st, err := harness.RunFutureStudy(rates, *pattern, *seed, pool)
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxfuture:", err)
		os.Exit(1)
	}
	fmt.Print(harness.FormatFutureStudy(st))
}
