// Command noxpower regenerates Figure 12: the network dynamic power
// breakdown under 2 GB/s/node single-flit uniform random traffic. As in
// the paper, an architecture that cannot sustain the load (Spec-Fast) is
// reported but not broken down.
//
// Usage:
//
//	noxpower
//	noxpower -rate 1500
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/harness"
	"repro/internal/probe"
	"repro/internal/router"
	"repro/internal/version"
)

func main() {
	var (
		rate     = flag.Float64("rate", 2000, "offered load (MB/s/node); the paper uses 2 GB/s/node")
		measure  = flag.Int64("measure", 10000, "measurement cycles")
		seed     = flag.Uint64("seed", 0xA11CE, "simulation seed")
		parallel = flag.Int("parallel", 0, "worker count for per-architecture runs (0 = all CPUs, 1 = serial; output is identical)")
		shards   = flag.Int("shards", 0, "intra-simulation worker shards (0 = auto, 1 = serial; output is identical)")
	)
	prof := probe.AddProfileFlags(flag.CommandLine)
	ver := version.Flag(flag.CommandLine)
	flag.Parse()
	version.ExitIf(*ver, "noxpower")
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxpower:", err)
		os.Exit(1)
	}
	defer stopProf()
	pool, err := exp.PoolFromFlag(*parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxpower:", err)
		os.Exit(1)
	}
	runs, err := exp.Map(context.Background(), pool, len(router.Archs),
		func(_ context.Context, i int) (harness.RunResult, error) {
			return harness.RunSynthetic(harness.SyntheticConfig{
				Arch:          router.Archs[i],
				Pattern:       "uniform",
				RateMBps:      *rate,
				MeasureCycles: *measure,
				Seed:          *seed,
				Shards:        *shards,
			})
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxpower:", err)
		os.Exit(1)
	}
	results := map[router.Arch]harness.RunResult{}
	for i, arch := range router.Archs {
		results[arch] = runs[i]
	}
	fmt.Print(harness.FormatPowerBreakdown(results))

	nox, sa := results[router.NoX], results[router.SpecAccurate]
	if !nox.Saturated && !sa.Saturated {
		// Compare component power (energy per wall-time), since equal
		// cycle counts span different wall-time windows across clocks.
		mw := func(r harness.RunResult, pj float64) float64 {
			return pj / (r.Energy.TotalPJ() / r.PowerMW)
		}
		fmt.Printf("\nSpec-Accurate vs NoX (paper §5.3: +4.6%% link, -2.4%% switch, +2.5%% total):\n")
		fmt.Printf("  link:   %+.1f%%\n", 100*(mw(sa, sa.Energy.LinkPJ)/mw(nox, nox.Energy.LinkPJ)-1))
		fmt.Printf("  switch: %+.1f%%\n", 100*(mw(sa, sa.Energy.XbarPJ)/mw(nox, nox.Energy.XbarPJ)-1))
		fmt.Printf("  total:  %+.1f%%\n", 100*(sa.PowerMW/nox.PowerMW-1))
	}
}
