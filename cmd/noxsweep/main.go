// Command noxsweep regenerates Figures 8 and 9: latency and energy-delay^2
// versus offered injection bandwidth, per traffic pattern, for all four
// router architectures.
//
// Usage:
//
//	noxsweep -figure 8                 # all patterns, latency panels
//	noxsweep -figure 9 -pattern uniform
//	noxsweep -fast                     # reduced cycles for a quick look
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/harness"
	"repro/internal/probe"
	"repro/internal/telemetry"
	"repro/internal/traffic"
	"repro/internal/version"
)

func main() {
	var (
		figure   = flag.Int("figure", 8, "figure to regenerate: 8 (latency) or 9 (energy-delay^2)")
		pattern  = flag.String("pattern", "all", "traffic pattern or 'all'")
		fast     = flag.Bool("fast", false, "reduced warmup/measurement for a quick look")
		csv      = flag.Bool("csv", false, "emit machine-readable CSV instead of tables")
		seed     = flag.Uint64("seed", 0xA11CE, "simulation seed")
		parallel = flag.Int("parallel", 0, "worker count for sweep points (0 = all CPUs, 1 = serial; output is identical)")
		shards   = flag.Int("shards", 0, "intra-simulation worker shards per point (0 = auto, 1 = serial; output is identical)")
		batch    = flag.Int("batch", 0, "lockstep cohort width: step up to this many sweep points together on shared state (0 = off, -1 = default width; output is identical)")
		warm     = flag.Bool("warmstart", false, "warm once per architecture at -warmrate and fork every rate point from the copy (CSV is byte-identical to the cold sweep at the same warm rate)")
		warmRate = flag.Float64("warmrate", 600, "warm-up injection rate in MB/s/node for -warmstart")
		ckptDir  = flag.String("checkpoint", "", "persist per-architecture warm images into this directory (implies -warmstart)")
		restore  = flag.String("restore", "", "load cached warm images from this directory instead of re-warming; missing images are computed (implies -warmstart)")
	)
	tf := telemetry.AddFlags(flag.CommandLine)
	prof := probe.AddProfileFlags(flag.CommandLine)
	ver := version.Flag(flag.CommandLine)
	flag.Parse()
	version.ExitIf(*ver, "noxsweep")
	sess, err := tf.Start("noxsweep")
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxsweep:", err)
		os.Exit(1)
	}
	defer sess.Close()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxsweep:", err)
		os.Exit(1)
	}
	defer stopProf()
	pool, err := exp.PoolFromFlag(*parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxsweep:", err)
		os.Exit(1)
	}

	if *figure != 8 && *figure != 9 {
		fmt.Fprintln(os.Stderr, "noxsweep: -figure must be 8 or 9")
		os.Exit(1)
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "noxsweep:", err)
			os.Exit(1)
		}
	}

	patterns := traffic.PatternNames
	if *pattern != "all" {
		patterns = []string{*pattern}
	}

	for _, pat := range patterns {
		base := harness.SyntheticConfig{Pattern: pat, Seed: *seed, Shards: *shards,
			Progress: sess.Sampler(), NewRecorder: sess.NewRecorder}
		if *fast {
			base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 1500, 4000, 15000
		}
		if *warm || *ckptDir != "" || *restore != "" {
			base.WarmStart = true
			base.WarmRateMBps = *warmRate
			base.WarmSaveDir = *ckptDir
			base.WarmLoadDir = *restore
		}
		var points []harness.SweepPoint
		var err error
		if *batch != 0 {
			width := *batch
			if width < 0 {
				width = 0 // batch.DefaultWidth
			}
			var skipped int
			points, skipped, err = harness.SweepSyntheticBatched(base, harness.DefaultRates(pat), width, pool)
			if skipped > 0 {
				fmt.Fprintf(os.Stderr, "noxsweep: %s: %d duplicate (arch, rate) jobs simulated once\n", pat, skipped)
			}
		} else {
			points, err = harness.SweepSynthetic(base, harness.DefaultRates(pat), pool)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "noxsweep:", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(harness.SweepCSV(pat, points))
			continue
		}
		if *figure == 8 {
			fmt.Print(harness.FormatSweepLatency(pat, points))
		} else {
			fmt.Print(harness.FormatSweepED2(pat, points))
		}
		fmt.Print(harness.FormatSaturation(pat, points))
		fmt.Println()
	}
}
