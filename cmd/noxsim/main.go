// Command noxsim runs a single synthetic-traffic simulation of one router
// architecture and reports latency, throughput, and energy — the basic
// experiment unit behind Figures 8, 9, and 12.
//
// Usage:
//
//	noxsim -arch nox -pattern uniform -rate 2000
//	noxsim -print-config          # Table 1
//	noxsim -arch specfast -pattern selfsimilar -rate 800 -flits 1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/noc"
	"repro/internal/probe"
	"repro/internal/router"
	"repro/internal/telemetry"
	"repro/internal/version"
)

func main() {
	var (
		archName    = flag.String("arch", "nox", "router architecture: nonspec|specfast|specaccurate|nox")
		pattern     = flag.String("pattern", "uniform", "traffic pattern: uniform|transpose|bitcomp|bitrev|shuffle|tornado|neighbor|hotspot|selfsimilar")
		rate        = flag.Float64("rate", 1000, "offered injection bandwidth (MB/s/node)")
		flits       = flag.Int("flits", 1, "packet length in flits")
		warmup      = flag.Int64("warmup", 3000, "warmup cycles")
		measure     = flag.Int64("measure", 10000, "measurement cycles")
		seed        = flag.Uint64("seed", 0xA11CE, "simulation seed")
		shards      = flag.Int("shards", 0, "intra-simulation worker shards (0 = auto, 1 = serial; results are bit-identical)")
		printConfig = flag.Bool("print-config", false, "print Table 1 system parameters and exit")
		tracePkts   = flag.Int("trace", 0, "print the first N delivered packets")
		ckptPath    = flag.String("checkpoint", "", "write a resumable full-state checkpoint to this file every -checkpoint-every cycles (atomic overwrite)")
		ckptEvery   = flag.Int64("checkpoint-every", 5000, "checkpoint period in main-loop cycles (with -checkpoint)")
		restore     = flag.String("restore", "", "resume from a checkpoint file written by -checkpoint (run parameters must match the checkpointed run)")
	)
	tf := telemetry.AddFlags(flag.CommandLine)
	prof := probe.AddProfileFlags(flag.CommandLine)
	ver := version.Flag(flag.CommandLine)
	flag.Parse()
	version.ExitIf(*ver, "noxsim")
	sess, err := tf.Start("noxsim")
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxsim:", err)
		os.Exit(1)
	}
	defer sess.Close()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxsim:", err)
		os.Exit(1)
	}
	defer stopProf()

	if *printConfig {
		fmt.Print(harness.Table1())
		return
	}

	arch, err := router.ArchByName(*archName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxsim:", err)
		os.Exit(1)
	}
	cfg := harness.SyntheticConfig{
		Arch:          arch,
		Pattern:       *pattern,
		RateMBps:      *rate,
		PacketFlits:   *flits,
		WarmupCycles:  *warmup,
		MeasureCycles: *measure,
		Seed:          *seed,
		Shards:        *shards,
		Progress:      sess.Sampler(),
		NewRecorder:   sess.NewRecorder,

		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
		RestorePath:     *restore,
	}
	if *tracePkts > 0 {
		remaining := *tracePkts
		cfg.Observe = func(p *noc.Packet, cycle int64) {
			if remaining <= 0 {
				return
			}
			remaining--
			fmt.Printf("pkt %-6d %2d -> %-2d  %d flits  inject@%-6d deliver@%-6d latency %d cycles\n",
				p.ID, p.Src, p.Dst, p.Length, p.CreateCycle, p.DeliverCycle, p.Latency())
		}
	}
	res, err := harness.RunSynthetic(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxsim:", err)
		os.Exit(1)
	}
	sess.Sampler().Done(*warmup + *measure)

	fmt.Printf("architecture:        %s (clock %.2f ns)\n", res.Arch, res.PeriodNs)
	fmt.Printf("pattern:             %s, %d-flit packets\n", *pattern, *flits)
	fmt.Printf("offered / accepted:  %.0f / %.0f MB/s/node\n", res.OfferedMBps, res.AcceptedMBps)
	fmt.Printf("mean latency:        %.2f ns (%.1f cycles), p50 %.2f, p99 %.2f, max %.2f ns\n",
		res.MeanLatencyNs, res.MeanLatencyCycles, res.P50LatencyNs, res.P99LatencyNs, res.MaxLatencyNs)
	fmt.Printf("saturated:           %v\n", res.Saturated)
	fmt.Printf("network power:       %.1f mW (link share %.1f%%)\n", res.PowerMW, 100*res.Energy.LinkShare())
	fmt.Printf("packet energy:       %.1f pJ\n", res.PacketEnergyPJ)
	fmt.Printf("energy-delay^2:      %.0f pJ*ns^2\n", res.EnergyDelay2)
	c := res.Window
	fmt.Printf("events: xbar=%d link=%d invalid=%d collisions=%d encoded=%d aborts=%d wasted=%d decode=%d\n",
		c.Xbar, c.LinkFlit, c.LinkInvalid, c.Collisions, c.EncodedFlits, c.Aborts, c.WastedCycles, c.Decode)
}
