// Command noxtrace runs a short probed simulation and exports the
// flit-level event stream and per-router metrics: a Chrome trace-event JSON
// file (load it at https://ui.perfetto.dev or chrome://tracing; one process
// per router, one track per port), a textual waveform, per-router and
// heatmap CSVs, and the periodic time series.
//
// Usage:
//
//	noxtrace -arch nox -width 4 -height 4 -rate 1800 -out trace.json
//	noxtrace -waveform - -cycles 200 -rate 2500      # waveform to stdout
//	noxtrace -routers-csv routers.csv -heatmap-csv heat.csv -timeseries-csv ts.csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/harness"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/physical"
	"repro/internal/probe"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/traffic"
	"repro/internal/version"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "noxtrace:", err)
	os.Exit(1)
}

// withOut opens path ('-' = stdout, "" = skip) and runs write against it.
func withOut(path string, write func(w io.Writer) error) {
	if path == "" {
		return
	}
	if path == "-" {
		if err := write(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

// parseTraceEvents parses Chrome trace-event JSON and returns the event
// count, rejecting documents with no events. Factored from validateTrace so
// the fuzz target can drive it on raw bytes.
func parseTraceEvents(data []byte) (int, error) {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("invalid trace JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return 0, fmt.Errorf("trace JSON has no events")
	}
	return len(doc.TraceEvents), nil
}

// validateTrace parses a previously emitted Chrome trace file and checks it
// holds a non-empty event array — the make trace-smoke gate.
func validateTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	n, err := parseTraceEvents(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: valid Chrome trace, %d events\n", path, n)
	return nil
}

// validateMetrics parses a Prometheus text-exposition document (a saved
// /metrics scrape) and checks it holds at least one sample — the make
// telemetry-smoke gate.
func validateMetrics(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	n, err := telemetry.ParseExposition(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if n == 0 {
		return fmt.Errorf("%s: exposition holds no samples", path)
	}
	fmt.Printf("%s: valid Prometheus exposition, %d samples\n", path, n)
	return nil
}

func main() {
	var (
		archName = flag.String("arch", "nox", "router architecture: nonspec|specfast|specaccurate|nox")
		pattern  = flag.String("pattern", "uniform", "traffic pattern: uniform|transpose|bitcomp|bitrev|shuffle|tornado|neighbor|hotspot|selfsimilar")
		rate     = flag.Float64("rate", 1500, "offered injection bandwidth (MB/s/node)")
		flits    = flag.Int("flits", 1, "packet length in flits")
		width    = flag.Int("width", 4, "mesh width in routers")
		height   = flag.Int("height", 4, "mesh height in routers")
		cycles   = flag.Int64("cycles", 2000, "cycles of traffic before the drain")
		drain    = flag.Int64("drain", 20000, "drain cycle limit after traffic stops")
		seed     = flag.Uint64("seed", 0xA11CE, "simulation seed")
		shards   = flag.Int("shards", 0, "intra-simulation worker shards (0 = auto, 1 = serial; exports are byte-identical)")
		ring     = flag.Int("ring", 1<<18, "event ring capacity (rounded up to a power of two; the ring keeps the most recent events)")
		sample   = flag.Int64("sample", 100, "time-series sampling interval in cycles (0 disables the sampler)")
		out      = flag.String("out", "trace.json", "Chrome trace-event JSON output file ('-' = stdout, '' = skip)")
		waveform = flag.String("waveform", "", "textual waveform output file ('-' = stdout)")
		routers  = flag.String("routers-csv", "", "per-router metrics CSV output file")
		heatmap  = flag.String("heatmap-csv", "", "mesh traversal heatmap CSV output file")
		series   = flag.String("timeseries-csv", "", "periodic time-series CSV output file")
		validate = flag.String("validate", "", "validate an existing Chrome trace JSON file and exit")
		valMet   = flag.String("validate-metrics", "", "validate a saved Prometheus /metrics scrape and exit")
	)
	tf := telemetry.AddFlags(flag.CommandLine)
	prof := probe.AddProfileFlags(flag.CommandLine)
	ver := version.Flag(flag.CommandLine)
	flag.Parse()
	version.ExitIf(*ver, "noxtrace")
	if *validate != "" {
		if err := validateTrace(*validate); err != nil {
			fatal(err)
		}
		return
	}
	if *valMet != "" {
		if err := validateMetrics(*valMet); err != nil {
			fatal(err)
		}
		return
	}
	sess, err := tf.Start("noxtrace")
	if err != nil {
		fatal(err)
	}
	defer sess.Close()
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	arch, err := router.ArchByName(*archName)
	if err != nil {
		fatal(err)
	}
	topo := noc.Topology{Width: *width, Height: *height}
	periodNs := physical.ClockPeriodNs(arch)

	flitRate := harness.FlitsPerNodeCycle(*rate, periodNs)
	pktRate := flitRate / float64(*flits)
	if pktRate >= 1 {
		fatal(fmt.Errorf("offered rate %.0f MB/s/node exceeds one packet per cycle at %v", *rate, arch))
	}

	selfSimilar := *pattern == "selfsimilar"
	var pat traffic.Pattern
	if selfSimilar {
		pat = traffic.Uniform{Topo: topo}
	} else {
		if pat, err = traffic.ByName(*pattern, topo); err != nil {
			fatal(err)
		}
	}

	rep := sess.Sampler()
	var obs func(cycle int64, active int)
	if rep != nil {
		obs = rep.Observe
	}
	pr := probe.New(probe.Config{RingEvents: *ring, SampleEvery: *sample, PeriodNs: periodNs})
	net := network.New(network.Config{Topo: topo, Arch: arch, Probe: pr, Shards: *shards, Observer: obs})
	defer net.Close()
	rep.RunStarted()

	base := sim.NewRNG(*seed)
	nodes := topo.Nodes()
	procs := make([]traffic.Process, nodes)
	dests := make([]*sim.RNG, nodes)
	for i := range procs {
		r := base.Fork(uint64(i))
		if selfSimilar {
			procs[i] = traffic.NewSelfSimilar(pktRate, r)
		} else {
			procs[i] = &traffic.Bernoulli{P: pktRate, RNG: r}
		}
		dests[i] = base.Fork(uint64(1000 + i))
	}

	for cyc := int64(0); cyc < *cycles; cyc++ {
		for id := 0; id < nodes; id++ {
			if !procs[id].Tick() {
				continue
			}
			src := noc.NodeID(id)
			dst := pat.Dest(src, dests[id])
			if dst == src {
				continue
			}
			net.Inject(src, dst, *flits, 0)
		}
		net.Step()
		rep.Tick(net.Cycle())
	}
	deadline := net.Cycle() + *drain
	for net.Outstanding() > 0 && net.Cycle() < deadline {
		net.Step()
		rep.Tick(net.Cycle())
	}
	rep.Done(net.Cycle())

	withOut(*out, pr.WriteChromeTrace)
	withOut(*waveform, pr.WriteWaveform)
	withOut(*routers, pr.WriteRouterCSV)
	withOut(*heatmap, pr.WriteHeatmapCSV)
	withOut(*series, pr.WriteTimeSeriesCSV)

	t := pr.Totals()
	fmt.Fprintf(os.Stderr,
		"noxtrace: %s %dx%d %s @ %.0f MB/s/node: %d cycles, %d/%d packets delivered\n",
		arch, *width, *height, *pattern, *rate, net.Cycle(), net.Delivered(), net.Injected())
	fmt.Fprintf(os.Stderr,
		"noxtrace: %d events recorded (%d dropped by ring wrap): traversals=%d collisions=%d aborts=%d decodes=%d stalls=%d\n",
		pr.EventCount(), pr.Dropped(), t.Traversals, t.Collisions, t.Aborts, t.Decodes, t.CreditStalls)
	if net.Outstanding() > 0 {
		fmt.Fprintf(os.Stderr, "noxtrace: warning: %d packets undelivered at the drain limit\n", net.Outstanding())
	}
}
