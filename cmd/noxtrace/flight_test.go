package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/check"
	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/physical"
	"repro/internal/router"
	"repro/internal/telemetry"
)

// TestFlightDumpValidates drives a real failure — a replayable bit-flip
// fault campaign the delivery oracle catches — with the flight recorder
// armed the way every cmd tool arms it (BindChecker, no flags), then runs
// the dump through the same validator `noxtrace -validate` uses. This is
// the acceptance path: a checker trip must yield a loadable Perfetto trace
// with no operator action.
func TestFlightDumpValidates(t *testing.T) {
	arch := router.NoX
	rec := telemetry.NewRecorder(telemetry.RecorderConfig{
		Dir: t.TempDir(), Label: "oracle-trip", PeriodNs: physical.ClockPeriodNs(arch),
	})
	ck := check.New(check.All())
	rec.BindChecker(ck)

	topo := noc.Topology{Width: 4, Height: 4}
	inj := fault.NewInjector(fault.Spec{Seed: 0xBADF00D, BitFlip: 0.02})
	net := network.New(network.Config{Topo: topo, Arch: arch, Check: ck, Fault: inj, Probe: rec.Probe()})
	defer net.Close()

	// Hotspot contention manufactures encoded flits for the bit-flips to
	// corrupt; the seed makes the campaign replayable, so the trip is
	// deterministic.
	for round := 0; round < 20; round++ {
		for id := 1; id < topo.Nodes(); id++ {
			net.Inject(noc.NodeID(id), 0, 2, 0)
		}
		net.Step()
	}
	if err := net.DrainChecked(5000, 1000); err != nil {
		rec.Trigger(net.Cycle(), "drain: "+err.Error())
	}
	net.CheckInvariants()

	if !rec.Triggered() {
		t.Fatal("fault campaign produced no trigger — raise the bit-flip rate")
	}
	path, err := rec.Flush(net.WriteDiagnostic)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if path == "" {
		t.Fatal("triggered recorder wrote no trace")
	}
	if err := validateTrace(path); err != nil {
		t.Errorf("auto-dumped flight trace failed validation: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read dump: %v", err)
	}
	if n, err := parseTraceEvents(data); err != nil || n == 0 {
		t.Errorf("parseTraceEvents = %d, %v", n, err)
	}
}

// TestValidateMetrics exercises the -validate-metrics path the
// telemetry-smoke gate runs against a saved /metrics scrape.
func TestValidateMetrics(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "metrics.txt")
	if err := os.WriteFile(good, []byte("# HELP nox_cycles_total cycles\n# TYPE nox_cycles_total counter\nnox_cycles_total 42\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateMetrics(good); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}

	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("# only comments\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateMetrics(empty); err == nil {
		t.Error("sample-free exposition accepted")
	}

	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("nox_cycles_total not-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateMetrics(bad); err == nil {
		t.Error("malformed exposition accepted")
	}
}
