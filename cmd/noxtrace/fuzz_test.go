package main

import (
	"encoding/json"
	"testing"
)

// FuzzValidateTrace drives the -validate path's parser on arbitrary bytes:
// it must never panic, and whenever it accepts a document the event count
// is positive and the input really was valid JSON.
func FuzzValidateTrace(f *testing.F) {
	f.Add([]byte(`{"traceEvents":[{"ph":"X","name":"traverse","pid":0,"tid":1,"ts":10,"dur":1}]}`))
	f.Add([]byte(`{"traceEvents":[],"displayTimeUnit":"ns"}`))
	f.Add([]byte(`{"traceEvents":[null]}`))
	f.Add([]byte(`{"traceEvents":"not an array"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"other":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := parseTraceEvents(data)
		if err != nil {
			return
		}
		if n <= 0 {
			t.Fatalf("accepted trace with %d events", n)
		}
		if !json.Valid(data) {
			t.Fatalf("accepted input that is not valid JSON: %q", data)
		}
	})
}
