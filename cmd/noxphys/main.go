// Command noxphys prints the physical-implementation results: Table 2's
// router clock periods (with the §6.1 relative speedups) and Figure 13's
// floorplan area comparison.
//
// Usage:
//
//	noxphys              # Table 2
//	noxphys -floorplan   # Figure 13
//	noxphys -all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/probe"
	"repro/internal/version"
)

func main() {
	var (
		floorplan = flag.Bool("floorplan", false, "print the Figure 13 floorplan comparison")
		all       = flag.Bool("all", false, "print both Table 2 and Figure 13")
	)
	prof := probe.AddProfileFlags(flag.CommandLine)
	ver := version.Flag(flag.CommandLine)
	flag.Parse()
	version.ExitIf(*ver, "noxphys")
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxphys:", err)
		os.Exit(1)
	}
	defer stopProf()

	if !*floorplan || *all {
		fmt.Print(harness.FormatTable2())
	}
	if *floorplan || *all {
		if *all {
			fmt.Println()
		}
		fmt.Print(harness.FormatFloorplan())
	}
}
