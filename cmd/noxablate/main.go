// Command noxablate runs the ablation studies DESIGN.md calls out: the
// paper's fixed design choices (Table 1's 4-flit buffers, round-robin
// arbitration, the XOR fabric's energy premium) varied one at a time.
//
// Usage:
//
//	noxablate                     # all ablations
//	noxablate -study buffers
//	noxablate -study arbiter -rate 2200
//	noxablate -study xorcost
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/exp"
	"repro/internal/harness"
	"repro/internal/probe"
	"repro/internal/router"
	"repro/internal/telemetry"
	"repro/internal/version"
)

func main() {
	var (
		study    = flag.String("study", "all", "buffers | arbiter | xorcost | all")
		rate     = flag.Float64("rate", 2000, "offered uniform load (MB/s/node)")
		parallel = flag.Int("parallel", 0, "worker count for ablation points (0 = all CPUs, 1 = serial; output is identical)")
		shards   = flag.Int("shards", 0, "intra-simulation worker shards (0 = auto, 1 = serial; output is identical)")
		batch    = flag.Int("batch", 0, "lockstep cohort width: step up to this many ablation cells together on shared state (0 = off, -1 = default width; output is identical)")
	)
	tf := telemetry.AddFlags(flag.CommandLine)
	prof := probe.AddProfileFlags(flag.CommandLine)
	ver := version.Flag(flag.CommandLine)
	flag.Parse()
	version.ExitIf(*ver, "noxablate")
	sess, err := tf.Start("noxablate")
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxablate:", err)
		os.Exit(1)
	}
	defer sess.Close()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxablate:", err)
		os.Exit(1)
	}
	defer stopProf()
	pool, err := exp.PoolFromFlag(*parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxablate:", err)
		os.Exit(1)
	}

	archs := []router.Arch{router.SpecAccurate, router.NoX}
	width := *batch
	if width < 0 {
		width = 0 // batch.DefaultWidth
	}

	if *study == "buffers" || *study == "all" {
		depths := []int{2, 3, 4, 6, 8}
		var pts []harness.AblationPoint
		if *batch != 0 {
			pts, err = harness.AblateBufferDepthBatched(depths, *rate, archs, width, pool, *shards)
			if err != nil {
				fmt.Fprintln(os.Stderr, "noxablate:", err)
				os.Exit(1)
			}
		} else {
			pts = harness.AblateBufferDepth(depths, *rate, archs, pool, *shards)
		}
		fmt.Print(harness.FormatAblation(
			fmt.Sprintf("Ablation: input buffer depth (uniform @ %.0f MB/s/node; Table 1 uses 4)", *rate), pts))
		fmt.Println()
	}
	if *study == "arbiter" || *study == "all" {
		var pts []harness.AblationPoint
		if *batch != 0 {
			pts, err = harness.AblateArbiterBatched(*rate, archs, width, pool, *shards)
			if err != nil {
				fmt.Fprintln(os.Stderr, "noxablate:", err)
				os.Exit(1)
			}
		} else {
			pts = harness.AblateArbiter(*rate, archs, pool, *shards)
		}
		fmt.Print(harness.FormatAblation(
			fmt.Sprintf("Ablation: output arbiter (uniform @ %.0f MB/s/node)", *rate), pts))
		fmt.Println()
	}
	if *study == "xorcost" || *study == "all" {
		factors := []float64{1.0, 1.03, 1.06, 1.12, 1.25}
		var rel map[float64]float64
		if *batch != 0 {
			rel, err = harness.AblateXORCostBatched(factors, *rate, *shards)
		} else {
			rel, err = harness.AblateXORCost(factors, *rate, pool, *shards)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "noxablate:", err)
			os.Exit(1)
		}
		fmt.Printf("Ablation: XOR switch energy premium (uniform @ %.0f MB/s/node)\n", *rate)
		fmt.Printf("%-10s %s\n", "factor", "Spec-Accurate power relative to NoX")
		keys := make([]float64, 0, len(rel))
		for f := range rel {
			keys = append(keys, f)
		}
		sort.Float64s(keys)
		for _, f := range keys {
			fmt.Printf("%-10.2f %+.1f%%\n", f, 100*(rel[f]-1))
		}
	}
}
