// Command noxbench converts `go test -bench` output into a machine-readable
// JSON snapshot so the repo's performance trajectory is tracked in version
// control. Each benchmark records ns/op, B/op, allocs/op, and any custom
// metrics reported via b.ReportMetric (the paper's headline numbers ride
// along with the timings).
//
// Usage (see `make bench-json` and `make bench-compare`):
//
//	go test -run '^$' -bench . -benchtime 1x . | noxbench -out BENCH_20260806T120000Z.json
//	noxbench -in bench.txt -out -          # JSON to stdout
//	noxbench -compare old.json new.json    # per-benchmark deltas; exit 1 on regression
//
// Compare mode matches benchmarks by name and gates on ns/op and allocs/op:
// exit status 1 when any benchmark got slower than -threshold (default 20%)
// by more than -floor nanoseconds absolute, or grew its allocation count
// past the same threshold (no floor — allocation counts are deterministic),
// 2 on bad input. The floor keeps sub-microsecond single-iteration readings
// — where a relative threshold would gate on timer jitter — from failing
// the comparison. B/op and custom metrics print informationally; a -1
// sentinel (allocations not measured) or a missing metrics block on either
// side is skipped with a note, never a failure, so snapshots from partial
// benchmark runs stay comparable.
//
// Committed BENCH_*.json snapshots are the repo's performance baseline, so
// they must be reproducible from a commit: writing a snapshot file from a
// dirty git tree is refused unless -allow-dirty is given, which stamps
// git_dirty into the JSON and prints a loud warning instead. Stdout output
// (-out -) is not a committed artifact and is always allowed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/version"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are -1 when the benchmark did not report them
	// (ReportAllocs not called), distinguishing "not measured" from zero.
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the emitted document. The git/host fields are best-effort
// provenance stamped at generation time; they are omitted when unavailable
// (no git binary, not a repository) and older snapshots without them remain
// comparable — -compare treats every one as informational.
type Snapshot struct {
	Schema       string      `json:"schema"`
	GeneratedUTC string      `json:"generated_utc"`
	GoVersion    string      `json:"go_version"`
	GoOS         string      `json:"goos"`
	GoArch       string      `json:"goarch"`
	NumCPU       int         `json:"num_cpu"`
	GitSHA       string      `json:"git_sha,omitempty"`
	GitDirty     bool        `json:"git_dirty,omitempty"`
	Host         string      `json:"host,omitempty"`
	Benchmarks   []Benchmark `json:"benchmarks"`
}

// describe renders a snapshot's provenance for the compare header: its
// timestamp plus whatever git/host metadata it carries (older snapshots
// carry none).
func (s Snapshot) describe() string {
	parts := []string{s.GeneratedUTC}
	if s.GitSHA != "" {
		sha := s.GitSHA
		if len(sha) > 12 {
			sha = sha[:12]
		}
		if s.GitDirty {
			sha += "-dirty"
		}
		parts = append(parts, sha)
	}
	if s.Host != "" {
		parts = append(parts, s.Host)
	}
	return strings.Join(parts, " ")
}

// parseLine parses one `Benchmark...` result line: name, iteration count,
// then value/unit pairs. Non-benchmark lines return ok=false.
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Shortest valid line: name, iterations, value, unit.
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, true
}

// Parse reads `go test -bench` output and returns the benchmark results in
// input order.
func Parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(strings.TrimSpace(sc.Text())); ok {
			out = append(out, b)
		}
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "noxbench:", err)
	os.Exit(1)
}

// dirtyGuard decides whether a snapshot write from a tree in the given git
// state may proceed. Committed BENCH_*.json files are the performance
// baseline future runs compare against, so a snapshot file must come from a
// clean checkout (its git_sha then identifies the exact code measured);
// -allow-dirty downgrades the refusal to a loud warning, and stdout output
// is never a committed artifact so it always passes silently.
func dirtyGuard(path string, dirty, allow bool) (warn string, err error) {
	if !dirty || path == "-" {
		return "", nil
	}
	if !allow {
		return "", fmt.Errorf("refusing to write %s from a dirty git tree — committed snapshots must be reproducible from a commit (commit first, or pass -allow-dirty to stamp git_dirty)", path)
	}
	return "WARNING: writing " + path + " from a dirty git tree; snapshot stamped git_dirty and is not a commit-reproducible baseline", nil
}

func main() {
	var (
		in         = flag.String("in", "-", "benchmark output to parse ('-' = stdin)")
		out        = flag.String("out", "", "JSON output file ('-' = stdout; default BENCH_<stamp>.json)")
		compare    = flag.Bool("compare", false, "compare two snapshots: noxbench -compare old.json new.json")
		threshold  = flag.Float64("threshold", 0.20, "ns/op and allocs/op regression threshold for -compare (0.20 = 20% worse fails)")
		floor      = flag.Float64("floor", 50_000, "absolute ns/op noise floor for -compare: slowdowns smaller than this never fail")
		allowDirty = flag.Bool("allow-dirty", false, "write a snapshot file from a dirty git tree anyway (stamped git_dirty, loud warning)")
	)
	ver := version.Flag(flag.CommandLine)
	flag.Parse()
	version.ExitIf(*ver, "noxbench")

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "noxbench: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold, *floor))
	}

	src := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	benches, err := Parse(src)
	if err != nil {
		fatal(err)
	}
	if len(benches) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}

	now := time.Now().UTC()
	snap := Snapshot{
		Schema:       "nox-bench/v1",
		GeneratedUTC: now.Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GoOS:         runtime.GOOS,
		GoArch:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		Benchmarks:   benches,
	}
	snap.GitSHA, snap.GitDirty = version.Git()
	if host, err := os.Hostname(); err == nil {
		snap.Host = host
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')

	path := *out
	if path == "" {
		path = "BENCH_" + now.Format("20060102T150405Z") + ".json"
	}
	if warn, err := dirtyGuard(path, snap.GitDirty, *allowDirty); err != nil {
		fatal(err)
	} else if warn != "" {
		fmt.Fprintln(os.Stderr, "noxbench:", warn)
	}
	if path == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "noxbench: wrote %d benchmarks to %s\n", len(benches), path)
}
