package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap(benches ...Benchmark) Snapshot {
	return Snapshot{Schema: "nox-bench/v1", Benchmarks: benches}
}

func bench(name string, ns, bytes, allocs float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
}

func TestCompareWithinThreshold(t *testing.T) {
	res := compareSnapshots(
		snap(bench("BenchmarkA", 1000, 64, 2)),
		snap(bench("BenchmarkA", 1100, 64, 2)),
		0.20, 0)
	if len(res.Regressions) != 0 {
		t.Fatalf("10%% slowdown under 20%% threshold flagged: %v", res.Regressions)
	}
}

func TestCompareRegression(t *testing.T) {
	res := compareSnapshots(
		snap(bench("BenchmarkA", 1000, 64, 2), bench("BenchmarkB", 500, -1, -1)),
		snap(bench("BenchmarkA", 1300, 64, 2), bench("BenchmarkB", 490, -1, -1)),
		0.20, 0)
	if len(res.Regressions) != 1 || res.Regressions[0] != "BenchmarkA" {
		t.Fatalf("regressions = %v, want [BenchmarkA]", res.Regressions)
	}
}

func TestCompareImprovementNeverFails(t *testing.T) {
	res := compareSnapshots(
		snap(bench("BenchmarkA", 1000, 64, 2)),
		snap(bench("BenchmarkA", 10, 0, 0)),
		0.20, 0)
	if len(res.Regressions) != 0 {
		t.Fatalf("speedup flagged as regression: %v", res.Regressions)
	}
}

// TestCompareAllocSentinels: a -1 bytes/allocs sentinel on either side means
// "not measured" and must be skipped with a note, never gated.
func TestCompareAllocSentinels(t *testing.T) {
	res := compareSnapshots(
		snap(bench("BenchmarkA", 1000, -1, -1)),
		snap(bench("BenchmarkA", 1000, 300000, 4637)),
		0.20, 0)
	if len(res.Regressions) != 0 {
		t.Fatalf("alloc sentinel produced regression: %v", res.Regressions)
	}
	joined := strings.Join(res.Lines, "\n")
	if !strings.Contains(joined, "not measured") {
		t.Fatalf("expected a skip note for unmeasured allocs, got:\n%s", joined)
	}
}

// TestCompareAllocsRegression: allocs/op gates on the same relative
// threshold as ns/op, with no noise floor — counts are deterministic.
func TestCompareAllocsRegression(t *testing.T) {
	res := compareSnapshots(
		snap(bench("BenchmarkA", 1000, 64, 10)),
		snap(bench("BenchmarkA", 1000, 64, 13)),
		0.20, 50_000)
	if len(res.Regressions) != 1 || res.Regressions[0] != "BenchmarkA (allocs/op)" {
		t.Fatalf("regressions = %v, want [BenchmarkA (allocs/op)]", res.Regressions)
	}
	joined := strings.Join(res.Lines, "\n")
	if !strings.Contains(joined, "ALLOCS REGRESSED") {
		t.Fatalf("alloc regression not marked in report:\n%s", joined)
	}
}

// TestCompareAllocsZeroBaselineGates: a 0 allocs/op baseline going nonzero
// always gates — that is the steady-state zero-allocation guarantee
// regressing, and no relative threshold can excuse it.
func TestCompareAllocsZeroBaselineGates(t *testing.T) {
	res := compareSnapshots(
		snap(bench("BenchmarkSteady", 1000, 0, 0)),
		snap(bench("BenchmarkSteady", 1000, 16, 1)),
		0.50, 50_000)
	if len(res.Regressions) != 1 || res.Regressions[0] != "BenchmarkSteady (allocs/op)" {
		t.Fatalf("regressions = %v, want [BenchmarkSteady (allocs/op)]", res.Regressions)
	}
}

// TestCompareAllocsWithinThreshold: alloc growth inside the threshold, and
// any alloc improvement, stay clean.
func TestCompareAllocsWithinThreshold(t *testing.T) {
	res := compareSnapshots(
		snap(bench("BenchmarkA", 1000, 64, 10), bench("BenchmarkB", 1000, 64, 10)),
		snap(bench("BenchmarkA", 1000, 64, 11), bench("BenchmarkB", 1000, 64, 2)),
		0.20, 50_000)
	if len(res.Regressions) != 0 {
		t.Fatalf("in-threshold alloc change flagged: %v", res.Regressions)
	}
}

// TestCompareAllocsSentinelSkipsGate: the -1 "not measured" sentinel on
// either side skips the allocs gate entirely — same tolerance as the
// informational columns.
func TestCompareAllocsSentinelSkipsGate(t *testing.T) {
	res := compareSnapshots(
		snap(bench("BenchmarkA", 1000, -1, -1), bench("BenchmarkB", 1000, 64, 10)),
		snap(bench("BenchmarkA", 1000, 64, 9999), bench("BenchmarkB", 1000, -1, -1)),
		0.20, 50_000)
	if len(res.Regressions) != 0 {
		t.Fatalf("sentinel-side alloc gate fired: %v", res.Regressions)
	}
}

// TestCompareMissingMetrics: metrics blocks are optional on either side;
// present-only-on-one-side metrics print informationally.
func TestCompareMissingMetrics(t *testing.T) {
	oldB := bench("BenchmarkA", 1000, 64, 2)
	newB := bench("BenchmarkA", 1000, 64, 2)
	newB.Metrics = map[string]float64{"avg-latency-cycles": 21.5}
	res := compareSnapshots(snap(oldB), snap(newB), 0.20, 0)
	if len(res.Regressions) != 0 {
		t.Fatalf("metric-only difference flagged: %v", res.Regressions)
	}
	joined := strings.Join(res.Lines, "\n")
	if !strings.Contains(joined, "avg-latency-cycles") {
		t.Fatalf("new metric not reported:\n%s", joined)
	}
}

// TestCompareDisjointNames: benchmarks present in only one snapshot are
// noted, not failed.
func TestCompareDisjointNames(t *testing.T) {
	res := compareSnapshots(
		snap(bench("BenchmarkOld", 1000, -1, -1)),
		snap(bench("BenchmarkNew", 1000, -1, -1)),
		0.20, 0)
	if len(res.Regressions) != 0 {
		t.Fatalf("disjoint benchmark sets flagged: %v", res.Regressions)
	}
	joined := strings.Join(res.Lines, "\n")
	if !strings.Contains(joined, "no baseline") || !strings.Contains(joined, "in baseline only") {
		t.Fatalf("missing/new benchmarks not noted:\n%s", joined)
	}
}

// TestCompareNoiseFloor: a relative slowdown past the threshold only gates
// when the absolute delta also clears the noise floor — a 100ns reading
// doubling is timer jitter, a 100µs one doubling is a regression.
func TestCompareNoiseFloor(t *testing.T) {
	res := compareSnapshots(
		snap(bench("BenchmarkTiny", 100, -1, -1), bench("BenchmarkBig", 100_000, -1, -1)),
		snap(bench("BenchmarkTiny", 250, -1, -1), bench("BenchmarkBig", 250_000, -1, -1)),
		0.20, 50_000)
	if len(res.Regressions) != 1 || res.Regressions[0] != "BenchmarkBig" {
		t.Fatalf("regressions = %v, want [BenchmarkBig]", res.Regressions)
	}
	joined := strings.Join(res.Lines, "\n")
	if !strings.Contains(joined, "noise") {
		t.Fatalf("sub-floor slowdown not marked as noise:\n%s", joined)
	}
}

func writeSnap(t *testing.T, dir, name string, s Snapshot) string {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunCompareExitCodes drives the full file-level entry point: 0 clean,
// 1 regression, 2 unreadable input.
func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", snap(bench("BenchmarkA", 1000, 64, 2)))
	goodPath := writeSnap(t, dir, "good.json", snap(bench("BenchmarkA", 900, 64, 2)))
	badPath := writeSnap(t, dir, "bad.json", snap(bench("BenchmarkA", 2000, 64, 2)))

	var sb strings.Builder
	if code := runCompare(&sb, oldPath, goodPath, 0.20, 0); code != 0 {
		t.Errorf("clean compare exited %d, want 0\n%s", code, sb.String())
	}
	if code := runCompare(&sb, oldPath, badPath, 0.20, 0); code != 1 {
		t.Errorf("regressed compare exited %d, want 1", code)
	}
	if code := runCompare(&sb, oldPath, filepath.Join(dir, "absent.json"), 0.20, 0); code != 2 {
		t.Errorf("missing file exited %d, want 2", code)
	}
	garbled := filepath.Join(dir, "garbled.json")
	if err := os.WriteFile(garbled, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runCompare(&sb, oldPath, garbled, 0.20, 0); code != 2 {
		t.Errorf("garbled file exited %d, want 2", code)
	}
}

// TestLoadSnapshotSchemaGuard rejects JSON that parses but is not a
// nox-bench snapshot.
func TestLoadSnapshotSchemaGuard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "other.json")
	if err := os.WriteFile(path, []byte(`{"schema":"something-else/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnapshot(path); err == nil {
		t.Error("foreign schema accepted")
	}
}
