package main

import (
	"strings"
	"testing"
)

// FuzzDecodeSnapshot drives the -compare path's snapshot decoder on
// arbitrary bytes: it must never panic, every accepted snapshot carries the
// nox-bench schema tag, and an accepted snapshot survives a full
// self-comparison (which must report zero regressions — a snapshot cannot
// be slower than itself).
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add([]byte(`{"schema":"nox-bench/1","generated_utc":"2026-01-01T00:00:00Z","benchmarks":[{"name":"BenchmarkNetworkCycleSteady/arch=NoX","iterations":1,"ns_per_op":120000,"bytes_per_op":0,"allocs_per_op":0}]}`))
	f.Add([]byte(`{"schema":"nox-bench/1","benchmarks":[]}`))
	f.Add([]byte(`{"schema":"nox-bench/1","benchmarks":[{"name":"B","ns_per_op":-1,"bytes_per_op":-1,"allocs_per_op":-1,"metrics":{"cycles/sec":1e9}}]}`))
	f.Add([]byte(`{"schema":"wrong/1"}`))
	f.Add([]byte(`{"schema":123}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		if !strings.HasPrefix(s.Schema, "nox-bench/") {
			t.Fatalf("accepted snapshot with schema %q", s.Schema)
		}
		res := compareSnapshots(s, s, 0.10, 100)
		if len(res.Regressions) != 0 {
			t.Fatalf("self-comparison reported regressions: %v", res.Regressions)
		}
	})
}
