package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// compareResult is the outcome of comparing two snapshots: the human-readable
// report lines and the names of benchmarks whose ns/op regressed past the
// threshold.
type compareResult struct {
	Lines       []string
	Regressions []string
}

// pctDelta returns the relative change from old to new as a percentage.
func pctDelta(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

// compareSnapshots matches benchmarks by name and reports per-benchmark
// deltas. Two columns gate:
//
//   - ns/op: a benchmark regresses when its new time exceeds
//     old*(1+threshold) AND the absolute slowdown exceeds floorNs. The floor
//     exists because snapshots come from single-iteration runs (-benchtime
//     1x): on a nanosecond-scale benchmark a relative threshold compares
//     timer jitter, not code — a 100ns idle-cycle reading can double between
//     runs without a single instruction changing. A slowdown below the floor
//     is reported as "noise" instead of gating.
//   - allocs/op: same relative threshold, no noise floor — allocation counts
//     are deterministic per op, so any growth past the threshold is code,
//     not jitter. A zero baseline going nonzero always gates (0*(1+t) = 0):
//     that is the 0 allocs/op steady-state guarantee regressing. A -1
//     sentinel on either side means "not measured" and is skipped with a
//     note, never treated as a regression.
//
// B/op and custom metrics are informational and tolerate a missing metrics
// block on either side. Benchmarks present in only one snapshot are noted,
// not failed.
func compareSnapshots(oldSnap, newSnap Snapshot, threshold float64, floorNs float64) compareResult {
	var res compareResult
	oldBy := make(map[string]Benchmark, len(oldSnap.Benchmarks))
	for _, b := range oldSnap.Benchmarks {
		oldBy[b.Name] = b
	}
	seen := make(map[string]bool, len(newSnap.Benchmarks))

	for _, nb := range newSnap.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			res.Lines = append(res.Lines, fmt.Sprintf("  new   %-48s %12.0f ns/op (no baseline)", nb.Name, nb.NsPerOp))
			continue
		}
		d := pctDelta(ob.NsPerOp, nb.NsPerOp)
		mark := "ok    "
		if ob.NsPerOp > 0 && nb.NsPerOp > ob.NsPerOp*(1+threshold) {
			if nb.NsPerOp-ob.NsPerOp > floorNs {
				mark = "SLOWER"
				res.Regressions = append(res.Regressions, nb.Name)
			} else {
				mark = "noise "
			}
		}
		res.Lines = append(res.Lines, fmt.Sprintf("  %s %-48s %12.0f -> %12.0f ns/op  %+7.1f%%",
			mark, nb.Name, ob.NsPerOp, nb.NsPerOp, d))

		// Allocation columns: allocs/op gates on the same threshold (B/op is
		// informational); both are skipped when either side did not measure
		// them (ReportAllocs not called; recorded as -1).
		switch {
		case ob.BytesPerOp < 0 || nb.BytesPerOp < 0:
			res.Lines = append(res.Lines, "         alloc: not measured on both sides, skipped")
		default:
			allocMark := ""
			if nb.AllocsPerOp > ob.AllocsPerOp*(1+threshold) {
				allocMark = "  ALLOCS REGRESSED"
				res.Regressions = append(res.Regressions, nb.Name+" (allocs/op)")
			}
			res.Lines = append(res.Lines, fmt.Sprintf("         %12.0f -> %12.0f B/op  %+7.1f%%   %12.0f -> %12.0f allocs/op%s",
				ob.BytesPerOp, nb.BytesPerOp, pctDelta(ob.BytesPerOp, nb.BytesPerOp),
				ob.AllocsPerOp, nb.AllocsPerOp, allocMark))
		}

		// Custom metrics: informational; either snapshot may omit the block.
		if len(ob.Metrics) > 0 || len(nb.Metrics) > 0 {
			keys := make([]string, 0, len(ob.Metrics)+len(nb.Metrics))
			for k := range ob.Metrics {
				keys = append(keys, k)
			}
			for k := range nb.Metrics {
				if _, dup := ob.Metrics[k]; !dup {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			for _, k := range keys {
				ov, oOK := ob.Metrics[k]
				nv, nOK := nb.Metrics[k]
				switch {
				case oOK && nOK:
					res.Lines = append(res.Lines, fmt.Sprintf("         metric %-24s %12.3f -> %12.3f  %+7.1f%%", k, ov, nv, pctDelta(ov, nv)))
				case nOK:
					res.Lines = append(res.Lines, fmt.Sprintf("         metric %-24s (new) %12.3f", k, nv))
				default:
					res.Lines = append(res.Lines, fmt.Sprintf("         metric %-24s %12.3f (gone)", k, ov))
				}
			}
		}
	}

	for _, ob := range oldSnap.Benchmarks {
		if !seen[ob.Name] {
			res.Lines = append(res.Lines, fmt.Sprintf("  gone  %-48s (in baseline only)", ob.Name))
		}
	}
	return res
}

// decodeSnapshot parses and validates snapshot JSON. Factored from
// loadSnapshot so the fuzz target can drive it on raw bytes.
func decodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, err
	}
	if !strings.HasPrefix(s.Schema, "nox-bench/") {
		return Snapshot{}, fmt.Errorf("unexpected schema %q", s.Schema)
	}
	return s, nil
}

// loadSnapshot reads and validates one snapshot file.
func loadSnapshot(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	s, err := decodeSnapshot(data)
	if err != nil {
		return Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// runCompare implements `noxbench -compare old.json new.json`. Exit status:
// 0 when no benchmark regressed, 1 on regression, 2 on usage/IO error.
func runCompare(w io.Writer, oldPath, newPath string, threshold float64, floorNs float64) int {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxbench:", err)
		return 2
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxbench:", err)
		return 2
	}
	fmt.Fprintf(w, "noxbench compare: %s (%s) -> %s (%s), threshold %+.0f%% (noise floor %.0f ns)\n",
		oldPath, oldSnap.describe(), newPath, newSnap.describe(), threshold*100, floorNs)
	res := compareSnapshots(oldSnap, newSnap, threshold, floorNs)
	for _, line := range res.Lines {
		fmt.Fprintln(w, line)
	}
	if len(res.Regressions) > 0 {
		fmt.Fprintf(w, "REGRESSION: %d reading(s) regressed past %.0f%% vs baseline: %s\n",
			len(res.Regressions), threshold*100, strings.Join(res.Regressions, ", "))
		return 1
	}
	fmt.Fprintf(w, "OK: %d benchmark(s) within threshold\n", len(newSnap.Benchmarks))
	return 0
}
