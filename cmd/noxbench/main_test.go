package main

import (
	"strings"
	"testing"
)

// TestParse covers the three line shapes `go test -bench` emits: plain
// timing, timing with allocation stats, and custom ReportMetric units —
// plus the chatter lines that must be ignored.
func TestParse(t *testing.T) {
	input := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: repro",
		"BenchmarkNetworkCycle/NoX-8         \t    1234\t    985432 ns/op\t       0 B/op\t       0 allocs/op",
		"BenchmarkFigure8SyntheticLatency-8  \t       1\t 123456789 ns/op\t      2775 NoX-sat-MB/s/node",
		"BenchmarkTable1SystemParameters     \t  500000\t      2101 ns/op",
		"--- BENCH: not a result line",
		"PASS",
		"ok  \trepro\t12.3s",
	}, "\n")
	benches, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(benches))
	}
	cyc := benches[0]
	if cyc.Name != "BenchmarkNetworkCycle/NoX-8" || cyc.Iterations != 1234 ||
		cyc.NsPerOp != 985432 || cyc.AllocsPerOp != 0 || cyc.BytesPerOp != 0 {
		t.Errorf("alloc-reporting line misparsed: %+v", cyc)
	}
	fig := benches[1]
	if fig.NsPerOp != 123456789 || fig.Metrics["NoX-sat-MB/s/node"] != 2775 {
		t.Errorf("custom metric misparsed: %+v", fig)
	}
	if fig.AllocsPerOp != -1 || fig.BytesPerOp != -1 {
		t.Errorf("unreported alloc stats should be -1: %+v", fig)
	}
	if tab := benches[2]; tab.Iterations != 500000 || tab.NsPerOp != 2101 {
		t.Errorf("plain line misparsed: %+v", tab)
	}
}

// TestDirtyGuard pins the snapshot provenance rule: file writes from a
// dirty tree are refused without -allow-dirty, loudly warned with it, and
// stdout output or a clean tree always passes.
func TestDirtyGuard(t *testing.T) {
	if warn, err := dirtyGuard("BENCH_X.json", false, false); err != nil || warn != "" {
		t.Errorf("clean tree: warn=%q err=%v, want silence", warn, err)
	}
	if _, err := dirtyGuard("BENCH_X.json", true, false); err == nil {
		t.Error("dirty tree file write without -allow-dirty was not refused")
	}
	warn, err := dirtyGuard("BENCH_X.json", true, true)
	if err != nil {
		t.Errorf("dirty tree with -allow-dirty refused: %v", err)
	}
	if !strings.Contains(warn, "WARNING") || !strings.Contains(warn, "git_dirty") {
		t.Errorf("dirty override warning not loud enough: %q", warn)
	}
	if warn, err := dirtyGuard("-", true, false); err != nil || warn != "" {
		t.Errorf("stdout output from dirty tree: warn=%q err=%v, want silence", warn, err)
	}
}
