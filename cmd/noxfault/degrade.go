// Degradation-sweep mode (-degrade K): how gracefully does each router
// architecture shed permanent link failures? The sweep kills 0..K
// inter-router links — a seeded, nested sequence, so the f-link cell's dead
// set is a superset of the (f-1)-link cell's — drives bursty (self-similar)
// traffic over the survivors with end-to-end retransmission armed, and
// reports sustained throughput, latency, and a full loss accounting per
// fault count. Like the campaign mode, the sweep is a pure function of its
// seed: the report is byte-identical across -parallel, -shards, and -batch
// settings, and replayable from the printed link sequence alone.
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/batch"
	"repro/internal/check"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// dcell is one (architecture, failed-link-count) degradation result.
type dcell struct {
	arch   router.Arch
	failed int
	ok     bool
	why    string

	injected      int64
	delivered     int64
	undeliverable int64
	violations    int64
	retransmits   int64
	acked         int64
	ackLost       int64
	exhausted     int64
	dupes         int64
	epochs        int64
	lastEpoch     int64
	partitioned   int
	latSum        int64
	latN          int64
	endCycle      int64
}

// meanLat returns the mean create-to-deliver latency in cycles (0 when
// nothing was delivered).
func (c dcell) meanLat() float64 {
	if c.latN == 0 {
		return 0
	}
	return float64(c.latSum) / float64(c.latN)
}

// thpt returns delivered packets per cycle over the cell's full run.
func (c dcell) thpt() float64 {
	if c.endCycle == 0 {
		return 0
	}
	return float64(c.delivered) / float64(c.endCycle)
}

// degradeLinks returns the sweep's kill sequence: every undirected
// inter-router mesh link, Fisher-Yates shuffled by the seed. Cell f kills
// the first f entries, so the dead sets nest and the degradation curve is
// monotone in the fault pattern, not re-rolled per point.
func degradeLinks(topo noc.Topology, seed uint64) [][2]noc.NodeID {
	var links [][2]noc.NodeID
	for id := noc.NodeID(0); int(id) < topo.Nodes(); id++ {
		if nb, ok := topo.Neighbor(id, noc.East); ok {
			links = append(links, [2]noc.NodeID{id, nb})
		}
		if nb, ok := topo.Neighbor(id, noc.South); ok {
			links = append(links, [2]noc.NodeID{id, nb})
		}
	}
	rng := sim.NewRNG(seed ^ 0x44454752) // "DEGR"
	for i := len(links) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		links[i], links[j] = links[j], links[i]
	}
	return links
}

// degradeSpec builds cell f's fault spec: the first f links of the kill
// sequence, dead at killAt, no transient rates.
func degradeSpec(seq [][2]noc.NodeID, f int, killAt int64, seed uint64) fault.Spec {
	s := fault.Spec{Seed: seed}
	for _, l := range seq[:f] {
		s.DeadLinks = append(s.DeadLinks, fault.DeadLink{A: l[0], B: l[1], At: killAt})
	}
	return s
}

// degradeTraffic builds one cell's bursty sources: per-core self-similar
// ON/OFF processes and destination streams, forked from the cell seed
// exactly like the harness does, so the packet sequence depends only on
// (seed, arch, f).
type degradeTraffic struct {
	procs []traffic.Process
	dests []*sim.RNG
}

func newDegradeTraffic(cores int, load float64, seed uint64) degradeTraffic {
	base := sim.NewRNG(seed ^ 0x42555253) // "BURS"
	tr := degradeTraffic{
		procs: make([]traffic.Process, cores),
		dests: make([]*sim.RNG, cores),
	}
	for i := range tr.procs {
		tr.procs[i] = traffic.NewSelfSimilar(load, base.Fork(uint64(i)))
		tr.dests[i] = base.Fork(uint64(1000 + i))
	}
	return tr
}

// injectCycle injects one cycle of the cell's traffic.
func (tr degradeTraffic) injectCycle(net *network.Network, multi float64) {
	cores := len(tr.procs)
	for id := 0; id < cores; id++ {
		if !tr.procs[id].Tick() {
			continue
		}
		rng := tr.dests[id]
		dst := rng.Intn(cores - 1)
		if dst >= id {
			dst++
		}
		length := 1
		if multi > 0 && rng.Float64() < multi {
			length = 4
		}
		net.Inject(noc.NodeID(id), noc.NodeID(dst), length, 0)
	}
}

// attachLatency hooks the cell's latency accumulator onto the network.
func (c *dcell) attachLatency(net *network.Network) {
	net.OnDeliver = func(p *noc.Packet, cycle int64) {
		c.latSum += cycle - p.CreateCycle
		c.latN++
	}
}

// finishDegradeCell drains and classifies one degradation cell — the shared
// epilogue of the serial and lockstep paths. A cell is ok when the run ends
// with zero violations and every injected packet either delivered or
// retired as undeliverable; anything else is an UNDETECTED accounting hole.
func finishDegradeCell(c *dcell, net *network.Network, ck *check.Checker, p params) {
	defer func() {
		c.injected, c.delivered = ck.Injected(), ck.Delivered()
		c.undeliverable = net.Undeliverable()
		c.violations = ck.Total()
		c.retransmits, c.acked, c.ackLost, c.exhausted = net.RetransmitStats()
		c.dupes = net.DupSuppressed()
		c.epochs, c.lastEpoch = net.Epochs(), net.LastEpochCycle()
		c.partitioned = net.PartitionedPairs()
		c.endCycle = net.Cycle()
		if r := recover(); r != nil {
			c.ok = false
			c.why = "panic: " + firstLine(fmt.Sprint(r))
		}
	}()
	drainErr := net.DrainChecked(p.drain, p.watchdog)
	net.CheckInvariants()
	switch {
	case drainErr != nil:
		c.ok = false
		c.why = "wedged: " + firstLine(drainErr.Error())
	case ck.Total() > 0:
		c.ok = false
		c.why = fmt.Sprintf("%d violations", ck.Total())
	case ck.Delivered()+net.Undeliverable() != ck.Injected():
		c.ok = false
		c.why = fmt.Sprintf("%d packets unaccounted", ck.Injected()-ck.Delivered()-net.Undeliverable())
	default:
		c.ok = true
	}
}

// runDegradeCell executes one cell serially.
func runDegradeCell(arch router.Arch, f int, seq [][2]noc.NodeID, killAt int64, rt network.RetransmitConfig, p params) (c dcell) {
	c.arch, c.failed = arch, f
	spec := degradeSpec(seq, f, killAt, p.template.Seed)
	ck := check.New(check.All())
	inj := fault.NewInjector(spec)
	net, err := network.Build(network.Config{
		Topo: p.topo, Arch: arch, BufferDepth: p.bufferDepth,
		Shards: p.shards, Check: ck, Fault: inj, Retransmit: &rt,
	})
	if err != nil {
		c.why = "build: " + err.Error()
		return c
	}
	defer net.Close()
	c.attachLatency(net)
	tr := newDegradeTraffic(net.Cores(), p.load, spec.Seed)
	for cyc := int64(0); cyc < p.cycles; cyc++ {
		tr.injectCycle(net, p.multi)
		net.Step()
	}
	finishDegradeCell(&c, net, ck, p)
	return c
}

// runDegradeCohort executes cells [lo, hi) of the flat (arch, fault-count)
// grid as one lockstep cohort, mirroring runCohortCells: shared traffic
// window, then individual drains. ok=false sends the caller to the serial
// fallback.
func runDegradeCohort(archs []router.Arch, points int, seq [][2]noc.NodeID, killAt int64, rt network.RetransmitConfig, p params, lo, hi int) (cells []dcell, ok bool) {
	n := hi - lo
	cells = make([]dcell, n)
	cks := make([]*check.Checker, n)
	specs := make([]fault.Spec, n)
	for j := 0; j < n; j++ {
		i := lo + j
		cells[j].arch, cells[j].failed = archs[i/points], i%points
		specs[j] = degradeSpec(seq, cells[j].failed, killAt, p.template.Seed)
		cks[j] = check.New(check.All())
	}
	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	co, err := batch.New(n, func(j int) network.Config {
		return network.Config{
			Topo: p.topo, Arch: cells[j].arch, BufferDepth: p.bufferDepth,
			Shards: p.shards, Check: cks[j], Fault: fault.NewInjector(specs[j]), Retransmit: &rt,
		}
	})
	if err != nil {
		panic(err.Error())
	}
	defer co.Close()
	trs := make([]degradeTraffic, n)
	for j := 0; j < n; j++ {
		cells[j].attachLatency(co.Net(j))
		trs[j] = newDegradeTraffic(co.Net(j).Cores(), p.load, specs[j].Seed)
	}
	for cyc := int64(0); cyc < p.cycles; cyc++ {
		for j := 0; j < n; j++ {
			trs[j].injectCycle(co.Net(j), p.multi)
		}
		co.Step()
	}
	co.Release()
	for j := 0; j < n; j++ {
		finishDegradeCell(&cells[j], co.Net(j), cks[j], p)
	}
	return cells, true
}

// runDegradeMode runs the full sweep and writes the report (and CSV).
func runDegradeMode(stdout io.Writer, archs []router.Arch, p params, degradeK int, killAt, rtimeout int64, retries, parallel, batchW int, outPath, csvPath string) error {
	seq := degradeLinks(p.topo, p.template.Seed)
	if degradeK > len(seq) {
		return fmt.Errorf("-degrade %d exceeds the mesh's %d inter-router links", degradeK, len(seq))
	}
	rt := network.RetransmitConfig{Timeout: rtimeout, Retries: retries}
	if rt.Timeout <= 0 {
		rt.Timeout = int64(4*(p.topo.Width+p.topo.Height) + 64)
	}

	points := degradeK + 1 // fault counts 0..K per architecture
	total := len(archs) * points
	pool := exp.NewPool(parallel)
	var cells []dcell
	var err error
	if batchW != 0 {
		w := batchW
		if w < 0 {
			w = 0 // batch.DefaultWidth
		}
		spans := batch.Chunks(total, w)
		couts, merr := exp.Map(context.Background(), pool, len(spans),
			func(_ context.Context, si int) ([]dcell, error) {
				lo, hi := spans[si][0], spans[si][1]
				if cs, ok := runDegradeCohort(archs, points, seq, killAt, rt, p, lo, hi); ok {
					return cs, nil
				}
				cs := make([]dcell, hi-lo)
				for j := range cs {
					i := lo + j
					cs[j] = runDegradeCell(archs[i/points], i%points, seq, killAt, rt, p)
				}
				return cs, nil
			})
		if merr != nil {
			return merr
		}
		cells = make([]dcell, 0, total)
		for _, cs := range couts {
			cells = append(cells, cs...)
		}
	} else {
		cells, err = exp.Map(context.Background(), pool, total,
			func(_ context.Context, i int) (dcell, error) {
				return runDegradeCell(archs[i/points], i%points, seq, killAt, rt, p), nil
			})
		if err != nil {
			return err
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "noxfault degradation sweep\n")
	fmt.Fprintf(&sb, "topo=%dx%d buffers=%d cycles=%d load=%.4f multi=%.2f drain=%d watchdog=%d seed=0x%X\n",
		p.topo.Width, p.topo.Height, p.bufferDepth, p.cycles, p.load, p.multi, p.drain, p.watchdog, p.template.Seed)
	fmt.Fprintf(&sb, "kill=cycle-%d retransmit: timeout=%d retries=%d\n", killAt, rt.Timeout, rt.Retries)
	var seqStr []string
	for _, l := range seq[:degradeK] {
		seqStr = append(seqStr, fmt.Sprintf("L%d-%d", int(l[0]), int(l[1])))
	}
	fmt.Fprintf(&sb, "kill sequence: %s\n", strings.Join(seqStr, " "))

	bad := 0
	for ai, arch := range archs {
		fmt.Fprintf(&sb, "arch %s:\n", arch)
		for f := 0; f < points; f++ {
			c := cells[ai*points+f]
			fmt.Fprintf(&sb, "  links=%d: injected=%d delivered=%d undeliverable=%d thpt=%.5f pkt/cycle lat=%.1f",
				c.failed, c.injected, c.delivered, c.undeliverable, c.thpt(), c.meanLat())
			if c.epochs > 0 {
				fmt.Fprintf(&sb, " epochs=%d@%d", c.epochs, c.lastEpoch)
			}
			if c.retransmits > 0 || c.exhausted > 0 {
				fmt.Fprintf(&sb, " rtx=%d/%d", c.retransmits, c.exhausted)
			}
			if c.dupes > 0 {
				fmt.Fprintf(&sb, " dups=%d", c.dupes)
			}
			if c.partitioned > 0 {
				fmt.Fprintf(&sb, " partitioned=%d", c.partitioned)
			}
			if c.ok {
				fmt.Fprintf(&sb, " ok\n")
			} else {
				bad++
				fmt.Fprintf(&sb, " UNDETECTED (%s)\n", c.why)
			}
		}
	}
	fmt.Fprintf(&sb, "overall: cells=%d ok=%d undetected=%d\n", total, total-bad, bad)
	if bad > 0 {
		fmt.Fprintf(&sb, "WARNING: unaccounted loss or violations under permanent faults\n")
	}

	report := sb.String()
	if outPath != "" {
		if err := os.WriteFile(outPath, []byte(report), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "noxfault: degradation report written to %s (%d cells)\n", outPath, total)
	} else {
		fmt.Fprint(stdout, report)
	}
	if csvPath != "" {
		var cb strings.Builder
		cb.WriteString("arch,failed_links,kill_cycle,injected,delivered,undeliverable,violations,retransmits,acked,ack_lost,exhausted,dup_suppressed,epochs,last_epoch,partitioned_pairs,mean_latency_cycles,delivered_per_cycle,end_cycle,status\n")
		for _, c := range cells {
			status := "ok"
			if !c.ok {
				status = "UNDETECTED"
			}
			fmt.Fprintf(&cb, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%.6f,%d,%s\n",
				c.arch, c.failed, killAt, c.injected, c.delivered, c.undeliverable, c.violations,
				c.retransmits, c.acked, c.ackLost, c.exhausted, c.dupes,
				c.epochs, c.lastEpoch, c.partitioned, c.meanLat(), c.thpt(), c.endCycle, status)
		}
		if err := os.WriteFile(csvPath, []byte(cb.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "noxfault: degradation CSV written to %s\n", csvPath)
	}
	return nil
}
