// Command noxfault runs deterministic fault-injection campaigns against the
// simulator's runtime invariant layer: each campaign drives random traffic
// through a mesh while injecting channel-level faults (bit-flips, drops,
// stalls, credit loss/duplication) from a seeded, replayable spec, then
// classifies the outcome — did the delivery oracle, protocol assertions, or
// deadlock watchdog detect the faults, were they masked, or (the regression
// signal) did traffic go missing with no violation recorded?
//
// Campaigns are pure functions of their seed: the report is byte-identical
// across runs, across -parallel settings, and across -shards settings.
//
// Usage:
//
//	noxfault -campaigns 8 -bitflip 0.001 -drop 0.0005
//	noxfault -arch nox -campaigns 4 -spec campaign.json -out report.txt
//	noxfault -width 4 -height 4 -stall 0.002 -creditloss 0.001 -shards 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/batch"
	"repro/internal/check"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/physical"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/snapshot/codec"
	"repro/internal/telemetry"
	"repro/internal/version"
)

// outcome classifies one campaign.
type outcome int

const (
	// outClean: no fault fired inside the campaign window.
	outClean outcome = iota
	// outMasked: faults fired but every packet was delivered bit-exactly
	// and no invariant tripped — the network absorbed them.
	outMasked
	// outDetected: the invariant layer caught the faults (violations, a
	// watchdog trip, or a recovered panic).
	outDetected
	// outDegraded: permanent faults cost packets, but every loss is
	// accounted — retired as undeliverable by the partition analysis or the
	// retry budget — with zero violations: graceful degradation.
	outDegraded
	// outUndetected: traffic went missing with no violation recorded — a
	// checker regression. A healthy build reports zero of these.
	outUndetected

	numOutcomes
)

func (o outcome) String() string {
	switch o {
	case outClean:
		return "clean"
	case outMasked:
		return "masked"
	case outDetected:
		return "detected"
	case outDegraded:
		return "degraded"
	default:
		return "UNDETECTED"
	}
}

// cell is one (architecture, campaign) result.
type cell struct {
	arch      router.Arch
	idx       int
	spec      fault.Spec
	out       outcome
	why       string // detection channel or wedge headline
	faults    [fault.NumKinds]int64
	impacted  int
	injected  int64
	delivered int64
	counts    [check.NumKinds]int64
	total     int64
	// Permanent-fault and reliability counters (zero when neither hard
	// faults nor retransmission are armed).
	undeliverable int64
	retransmits   int64
	acked         int64
	ackLost       int64
	exhausted     int64
	dupes         int64
	epochs        int64
	lastEpoch     int64
	partitioned   int
	escalated     int64
}

type params struct {
	topo        noc.Topology
	bufferDepth int
	shards      int
	cycles      int64
	load        float64
	multi       float64
	drain       int64
	watchdog    int64
	template    fault.Spec
	// retransmit, when non-nil, arms end-to-end NI retransmission in every
	// campaign network (see -rtimeout / -retries).
	retransmit *network.RetransmitConfig
	// newRecorder builds one flight recorder per campaign cell (nil or a
	// factory returning nil disarms recording). Labels are deterministic in
	// (arch, campaign), so the serial, sharded, and batched paths write the
	// same dump files; the report text is unaffected either way.
	newRecorder func(label string) *telemetry.Recorder
	// warm holds one shared warm image per architecture (-warmstart): a
	// fault-free network driven to steady state once, restored into every
	// campaign so faults hit loaded queues instead of an empty mesh. The
	// image is computed before the campaigns fan out, so the serial,
	// parallel, sharded, and batched paths restore identical state and the
	// report stays byte-identical across them.
	warm map[router.Arch][]byte
	// ckptDir, when set (-checkpoint), saves a full network snapshot of
	// every detected or undetected campaign's final state for post-mortem
	// inspection (noxfault -restore <file>).
	ckptDir string
}

// restoreWarm rewinds a freshly built campaign network to its
// architecture's shared warm image (a no-op without -warmstart). The warm
// image was saved checker-armed from an identically shaped network, so the
// cell's own checker inherits the warm phase's delivery ledger.
func restoreWarm(net *network.Network, arch router.Arch, p params) {
	if img := p.warm[arch]; img != nil {
		if err := snapshot.DecodeInto(img, net); err != nil {
			panic("warm restore: " + err.Error())
		}
	}
}

// warmFault drives one architecture's fault-free warm phase: uniform
// traffic at the campaign load for cycles cycles, checker armed, no
// injector, and returns the network snapshot every campaign of that
// architecture resumes from. The traffic stream has its own seed, shared by
// all campaigns of the architecture.
func warmFault(arch router.Arch, p params, cycles int64, seed uint64) ([]byte, error) {
	ck := check.New(check.All())
	net, err := network.Build(network.Config{
		Topo: p.topo, Arch: arch, BufferDepth: p.bufferDepth,
		Shards: p.shards, Check: ck,
	})
	if err != nil {
		return nil, err
	}
	defer net.Close()
	rng := sim.NewRNG(seed)
	cores := net.Cores()
	for cyc := int64(0); cyc < cycles; cyc++ {
		for id := 0; id < cores; id++ {
			if rng.Float64() >= p.load {
				continue
			}
			dst := rng.Intn(cores - 1)
			if dst >= id {
				dst++
			}
			length := 1
			if p.multi > 0 && rng.Float64() < p.multi {
				length = 4
			}
			net.Inject(noc.NodeID(id), noc.NodeID(dst), length, 0)
		}
		net.Step()
	}
	return snapshot.Encode(net)
}

// cellRecorder arms cell c's flight recorder: probe ring sized for the
// architecture's clock, checker violations latching the dump trigger.
func cellRecorder(c *cell, ck *check.Checker, p params) *telemetry.Recorder {
	if p.newRecorder == nil {
		return nil
	}
	rec := p.newRecorder(fmt.Sprintf("fault-%s-c%d", c.arch, c.idx))
	rec.SetPeriodNs(physical.ClockPeriodNs(c.arch))
	rec.BindChecker(ck)
	return rec
}

// campaignSeed derives campaign i's fault seed from the base with a
// golden-ratio stride, so campaigns are decorrelated but replayable from
// (base, i) alone.
func campaignSeed(base uint64, i int) uint64 {
	return base + uint64(i)*0x9E3779B97F4A7C15
}

// run executes one campaign cell. Fault-reachable panics are converted to a
// detected outcome by the recover — with the checker armed none should
// remain, so a recovered panic is itself worth surfacing in the report.
func run(arch router.Arch, idx int, p params) (c cell) {
	c.arch, c.idx = arch, idx
	c.spec = p.template
	c.spec.Seed = campaignSeed(p.template.Seed, idx)

	ck := check.New(check.All())
	inj := fault.NewInjector(c.spec)
	defer func() {
		c.injected, c.delivered = ck.Injected(), ck.Delivered()
		c.counts, c.total = ck.Counts(), ck.Total()
		c.faults, c.impacted = inj.Totals(), inj.ImpactedCount()
		if r := recover(); r != nil {
			c.out = outDetected
			c.why = "panic: " + firstLine(fmt.Sprint(r))
		}
	}()

	rec := cellRecorder(&c, ck, p)
	net, err := network.Build(network.Config{
		Topo: p.topo, Arch: arch, BufferDepth: p.bufferDepth,
		Shards: p.shards, Check: ck, Fault: inj, Probe: rec.Probe(),
		Retransmit: p.retransmit,
	})
	if err != nil {
		panic(err.Error())
	}
	defer net.Close()
	wireReconfig(net, rec)
	restoreWarm(net, arch, p)

	// Uniform-random traffic from the campaign's own stream; injection runs
	// on the stepping goroutine, so the packet sequence is shard-invariant.
	rng := sim.NewRNG(c.spec.Seed ^ 0x54524146) // "TRAF"
	cores := net.Cores()
	for cyc := int64(0); cyc < p.cycles; cyc++ {
		for id := 0; id < cores; id++ {
			if rng.Float64() >= p.load {
				continue
			}
			dst := rng.Intn(cores - 1)
			if dst >= id {
				dst++
			}
			length := 1
			if p.multi > 0 && rng.Float64() < p.multi {
				length = 4
			}
			net.Inject(noc.NodeID(id), noc.NodeID(dst), length, 0)
		}
		net.Step()
	}
	finishCell(&c, net, ck, inj, rec, p)
	return c
}

// finishCell drains one campaign's network and classifies the outcome —
// the post-traffic half of run, shared with the batched path (which drains
// members individually after releasing the lockstep group). The recover
// mirrors run's: a fault-reachable panic during the drain is a detected
// outcome attributed to this cell alone.
func finishCell(c *cell, net *network.Network, ck *check.Checker, inj *fault.Injector, rec *telemetry.Recorder, p params) {
	defer func() {
		c.injected, c.delivered = ck.Injected(), ck.Delivered()
		c.counts, c.total = ck.Counts(), ck.Total()
		c.faults, c.impacted = inj.Totals(), inj.ImpactedCount()
		c.undeliverable = net.Undeliverable()
		c.retransmits, c.acked, c.ackLost, c.exhausted = net.RetransmitStats()
		c.dupes = net.DupSuppressed()
		c.epochs, c.lastEpoch = net.Epochs(), net.LastEpochCycle()
		c.partitioned = net.PartitionedPairs()
		c.escalated = inj.EscalatedLinks()
		if r := recover(); r != nil {
			c.out = outDetected
			c.why = "panic: " + firstLine(fmt.Sprint(r))
		}
	}()
	drainErr := net.DrainChecked(p.drain, p.watchdog)
	net.CheckInvariants()
	if drainErr != nil {
		rec.Trigger(net.Cycle(), "drain: "+firstLine(drainErr.Error()))
	}
	// The dump goes to the flight directory and stderr only — the campaign
	// report must stay byte-identical with recording on or off.
	if rec.Triggered() {
		if _, err := rec.Flush(func(w io.Writer) {
			net.WriteDiagnostic(w)
			ck.WriteReport(w)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "noxfault:", err)
		}
	}

	switch {
	case drainErr != nil:
		c.out = outDetected
		c.why = "watchdog: " + firstLine(drainErr.Error())
	case ck.Total() > 0:
		c.out = outDetected
		c.why = "violations"
	case inj.Total() == 0 && net.Epochs() == 0 && net.CurrentFaults().Empty():
		c.out = outClean
	case ck.Delivered() == ck.Injected():
		c.out = outMasked
	case net.Undeliverable() > 0 && ck.Delivered()+net.Undeliverable() == ck.Injected():
		c.out = outDegraded
		c.why = fmt.Sprintf("%d undeliverable, every loss accounted", net.Undeliverable())
	default:
		c.out = outUndetected
		c.why = fmt.Sprintf("%d packets missing, zero violations", ck.Injected()-ck.Delivered()-net.Undeliverable())
	}
	// Crash-state checkpoint (-checkpoint): persist the final network state
	// of every campaign the fault actually damaged, for post-mortem
	// inspection with -restore. Side effect only — the report is unaffected.
	if p.ckptDir != "" && (c.out == outDetected || c.out == outUndetected) {
		path := filepath.Join(p.ckptDir, fmt.Sprintf("fault-%s-c%d.nox", c.arch, c.idx))
		if err := snapshot.SaveFile(path, net); err != nil {
			fmt.Fprintln(os.Stderr, "noxfault: checkpoint:", err)
		}
	}
}

// runCohortCells executes cells [lo, hi) of the flat (arch, campaign) grid
// as one lockstep cohort: all members inject and step the traffic window
// together on shared construction state, then the group is released and
// each member drains and classifies individually — exactly run's epilogue.
// ok reports whether the lockstep phase completed; a fault-reachable panic
// during it cannot be attributed to one member, so the caller replays the
// span serially (run recovers per cell) to keep the report byte-identical.
func runCohortCells(archs []router.Arch, campaigns int, p params, lo, hi int) (cells []cell, ok bool) {
	n := hi - lo
	cells = make([]cell, n)
	cks := make([]*check.Checker, n)
	injs := make([]*fault.Injector, n)
	for j := 0; j < n; j++ {
		i := lo + j
		c := &cells[j]
		c.arch, c.idx = archs[i/campaigns], i%campaigns
		c.spec = p.template
		c.spec.Seed = campaignSeed(p.template.Seed, c.idx)
		cks[j] = check.New(check.All())
		injs[j] = fault.NewInjector(c.spec)
	}

	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	recs := make([]*telemetry.Recorder, n)
	for j := range recs {
		recs[j] = cellRecorder(&cells[j], cks[j], p)
	}
	co, err := batch.New(n, func(j int) network.Config {
		return network.Config{
			Topo: p.topo, Arch: cells[j].arch, BufferDepth: p.bufferDepth,
			Shards: p.shards, Check: cks[j], Fault: injs[j], Probe: recs[j].Probe(),
			Retransmit: p.retransmit,
		}
	})
	if err != nil {
		panic(err.Error())
	}
	defer co.Close()
	for j := 0; j < n; j++ {
		wireReconfig(co.Net(j), recs[j])
		restoreWarm(co.Net(j), cells[j].arch, p)
	}

	rngs := make([]*sim.RNG, n)
	for j := range rngs {
		rngs[j] = sim.NewRNG(cells[j].spec.Seed ^ 0x54524146) // "TRAF"
	}
	for cyc := int64(0); cyc < p.cycles; cyc++ {
		for j := 0; j < n; j++ {
			net, rng := co.Net(j), rngs[j]
			cores := net.Cores()
			for id := 0; id < cores; id++ {
				if rng.Float64() >= p.load {
					continue
				}
				dst := rng.Intn(cores - 1)
				if dst >= id {
					dst++
				}
				length := 1
				if p.multi > 0 && rng.Float64() < p.multi {
					length = 4
				}
				net.Inject(noc.NodeID(id), noc.NodeID(dst), length, 0)
			}
		}
		co.Step()
	}

	// Drains end at member-specific cycles (watchdog windows, wedges), so
	// they run standalone: dissolve the group and finish each member with
	// the serial epilogue.
	co.Release()
	for j := 0; j < n; j++ {
		finishCell(&cells[j], co.Net(j), cks[j], injs[j], recs[j], p)
	}
	return cells, true
}

// wireReconfig arms the flight recorder's reconfiguration trigger: the
// first fault-driven route rebuild latches the recorder, so the dump window
// brackets the epoch (first-trigger-wins; a later checker trip or wedge
// would latch it anyway). Nil-safe like every Recorder method.
func wireReconfig(net *network.Network, rec *telemetry.Recorder) {
	net.OnReconfigure = func(cycle int64, fs routing.FaultSet) {
		rec.Trigger(cycle, "reconfiguration: "+fs.String())
	}
}

// firstLine trims a multi-line message (watchdog errors embed the full
// diagnostic dump) to its headline.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// kindList renders nonzero per-kind counts as a compact bracket list.
func kindList[T fmt.Stringer](counts []int64, kind func(int) T) string {
	var parts []string
	for i, n := range counts {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", kind(i), n))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return " [" + strings.Join(parts, " ") + "]"
}

func main() {
	var (
		archName  = flag.String("arch", "all", "router architecture: all|nonspec|specfast|specaccurate|nox")
		width     = flag.Int("width", 4, "mesh width")
		height    = flag.Int("height", 4, "mesh height")
		buffers   = flag.Int("buffers", 4, "input buffer depth (flits)")
		campaigns = flag.Int("campaigns", 8, "seeded campaigns per architecture")
		seed      = flag.Uint64("seed", 0xF001, "base campaign seed (campaign i uses a derived seed)")
		cycles    = flag.Int64("cycles", 2000, "traffic-injection cycles per campaign")
		load      = flag.Float64("load", 0.02, "per-node per-cycle injection probability")
		multi     = flag.Float64("multi", 0.25, "probability an injected packet is 4 flits")
		drain     = flag.Int64("drain", 20000, "drain cycle budget after injection stops")
		watchdog  = flag.Int64("watchdog", 4000, "livelock watchdog window (cycles without a delivery)")
		shards    = flag.Int("shards", 1, "intra-simulation worker shards (report is bit-identical at any setting)")
		parallel  = flag.Int("parallel", 0, "campaign-level worker pool size (0 = all CPUs; report is order-independent)")
		batchW    = flag.Int("batch", 0, "lockstep cohort width: step up to this many campaigns together on shared state (0 = off, -1 = default width; report is identical)")
		out       = flag.String("out", "", "write the report to this file instead of stdout")
		specPath  = flag.String("spec", "", "JSON fault-spec file (flag rates ignored when set; its seed, if nonzero, overrides -seed)")
		warmN     = flag.Int64("warmstart", 0, "warm each architecture's network fault-free for this many cycles once, then start every campaign from the shared warm state (0 = cold campaigns)")
		ckptDir   = flag.String("checkpoint", "", "save a full network snapshot of every detected/undetected campaign's final state into this directory (fault-<arch>-c<N>.nox)")
		restoreIn = flag.String("restore", "", "post-mortem mode: load a campaign snapshot, print its diagnostic dump and invariant report, and exit")

		degradeK = flag.Int("degrade", 0, "degradation-sweep mode: fail 0..N links (a seeded nested sequence) and report sustained throughput, latency, and loss accounting per fault count; transient-rate flags are ignored")
		killAt   = flag.Int64("kill", 0, "degradation mode: cycle the failed links die (0 = dead from the start; >0 = mid-run kill with flush and reconfiguration)")
		csvOut   = flag.String("csv", "", "degradation mode: also write the sweep as CSV to this file")
		rtimeout = flag.Int64("rtimeout", 0, "end-to-end retransmission base timeout in cycles (0 = disarmed; degradation mode defaults to 4*(w+h)+64)")
		retries  = flag.Int("retries", 4, "retransmission retry budget per packet (with -rtimeout)")

		bitflip    = flag.Float64("bitflip", 0.001, "per-flit-traversal bit-flip probability")
		dropRate   = flag.Float64("drop", 0, "per-flit-traversal drop probability")
		stall      = flag.Float64("stall", 0, "per-(site,cycle) stall-window start probability")
		stallCycle = flag.Int64("stallcycles", 8, "stall window duration in cycles")
		creditLoss = flag.Float64("creditloss", 0, "per-credit loss probability")
		creditDup  = flag.Float64("creditdup", 0, "per-credit duplication probability")
		startCycle = flag.Int64("start", 0, "first active fault cycle")
		endCycle   = flag.Int64("end", 0, "end of the active fault window (0 = unbounded)")
	)
	tf := telemetry.AddFlags(flag.CommandLine)
	ver := version.Flag(flag.CommandLine)
	flag.Parse()
	version.ExitIf(*ver, "noxfault")
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "noxfault:", err)
		os.Exit(1)
	}
	sess, err := tf.Start("noxfault")
	if err != nil {
		fail(err)
	}
	defer sess.Close()

	// Post-mortem mode: rebuild the network a -checkpoint snapshot captured
	// (structural parameters come from the image header) and print what the
	// fault left behind. The checker-armed state must match the image, so a
	// snapshot saved without a checker falls back to an unchecked restore.
	if *restoreIn != "" {
		data, err := os.ReadFile(*restoreIn)
		if err != nil {
			fail(err)
		}
		info, err := snapshot.Inspect(data)
		if err != nil {
			fail(err)
		}
		cfg := info.Config()
		cfg.Shards = *shards
		ck := check.New(check.All())
		cfg.Check = ck
		net, err := snapshot.Decode(data, cfg)
		if errors.Is(err, codec.ErrUnsupported) {
			cfg.Check, ck = nil, nil
			net, err = snapshot.Decode(data, cfg)
		}
		if err != nil {
			fail(err)
		}
		defer net.Close()
		fmt.Printf("snapshot %s: %s %dx%d buffers=%d cycle=%d\n",
			*restoreIn, info.Arch, info.Topo.Width, info.Topo.Height, info.BufferDepth, net.Cycle())
		net.WriteDiagnostic(os.Stdout)
		net.CheckInvariants()
		if ck != nil {
			ck.WriteReport(os.Stdout)
		}
		return
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fail(err)
		}
	}

	archs := router.Archs
	if *archName != "all" {
		a, err := router.ArchByName(*archName)
		if err != nil {
			fail(err)
		}
		archs = []router.Arch{a}
	}

	template := fault.Spec{
		Seed: *seed, Start: *startCycle, End: *endCycle,
		BitFlip: *bitflip, Drop: *dropRate,
		Stall: *stall, StallCycles: *stallCycle,
		CreditLoss: *creditLoss, CreditDup: *creditDup,
	}
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fail(err)
		}
		template, err = fault.ParseSpec(data)
		if err != nil {
			fail(err)
		}
		if template.Seed == 0 {
			template.Seed = *seed
		}
	}
	if err := template.Validate(); err != nil {
		fail(err)
	}
	if *campaigns <= 0 {
		fail(errors.New("-campaigns must be positive"))
	}

	p := params{
		topo:        noc.Topology{Width: *width, Height: *height},
		bufferDepth: *buffers,
		shards:      *shards,
		cycles:      *cycles,
		load:        *load,
		multi:       *multi,
		drain:       *drain,
		watchdog:    *watchdog,
		template:    template,
		newRecorder: sess.NewRecorder,
		ckptDir:     *ckptDir,
	}
	if *rtimeout > 0 {
		p.retransmit = &network.RetransmitConfig{Timeout: *rtimeout, Retries: *retries}
	}

	// Degradation-sweep mode: a separate experiment shape (fault-count sweep
	// of permanent link kills under bursty traffic) with its own report.
	if *degradeK > 0 {
		if err := runDegradeMode(os.Stdout, archs, p, *degradeK, *killAt, *rtimeout, *retries, *parallel, *batchW, *out, *csvOut); err != nil {
			fail(err)
		}
		return
	}
	if *warmN > 0 {
		p.warm = make(map[router.Arch][]byte, len(archs))
		for _, a := range archs {
			img, err := warmFault(a, p, *warmN, template.Seed^0x5741524D) // "WARM"
			if err != nil {
				fail(fmt.Errorf("warm-up %s: %w", a, err))
			}
			p.warm[a] = img
		}
	}

	// Fan the (arch, campaign) grid across the pool; cells are independent
	// and individually seeded, so results are position-stable. With -batch,
	// the grid is carved into lockstep cohorts first and whole cohorts fan
	// across the pool instead of single cells.
	pool := exp.NewPool(*parallel)
	total := len(archs) * *campaigns
	var cells []cell
	if *batchW != 0 {
		w := *batchW
		if w < 0 {
			w = 0 // batch.DefaultWidth
		}
		spans := batch.Chunks(total, w)
		couts, merr := exp.Map(context.Background(), pool, len(spans),
			func(_ context.Context, si int) ([]cell, error) {
				lo, hi := spans[si][0], spans[si][1]
				if cs, ok := runCohortCells(archs, *campaigns, p, lo, hi); ok {
					return cs, nil
				}
				// A panic escaped the lockstep traffic phase, where it cannot
				// be pinned on one member: replay this span cell by cell so
				// run's per-cell recover attributes it and the report stays
				// byte-identical to an unbatched invocation.
				cs := make([]cell, hi-lo)
				for j := range cs {
					i := lo + j
					cs[j] = run(archs[i / *campaigns], i%*campaigns, p)
				}
				return cs, nil
			})
		if merr != nil {
			fail(merr)
		}
		cells = make([]cell, 0, total)
		for _, cs := range couts {
			cells = append(cells, cs...)
		}
	} else {
		cells, err = exp.Map(context.Background(), pool, total,
			func(_ context.Context, i int) (cell, error) {
				return run(archs[i / *campaigns], i%*campaigns, p), nil
			})
		if err != nil {
			fail(err)
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "noxfault campaign report\n")
	fmt.Fprintf(&sb, "topo=%dx%d buffers=%d campaigns=%d cycles=%d load=%.4f multi=%.2f drain=%d watchdog=%d\n",
		*width, *height, *buffers, *campaigns, *cycles, *load, *multi, *drain, *watchdog)
	if *warmN > 0 {
		fmt.Fprintf(&sb, "warmstart: %d fault-free cycles shared per architecture\n", *warmN)
	}
	fmt.Fprintf(&sb, "spec template: %s\n", template)

	var overall [numOutcomes]int
	for ai, arch := range archs {
		fmt.Fprintf(&sb, "arch %s:\n", arch)
		var tally [numOutcomes]int
		var faults int64
		for ci := 0; ci < *campaigns; ci++ {
			c := cells[ai**campaigns+ci]
			tally[c.out]++
			overall[c.out]++
			var fsum int64
			for _, n := range c.faults {
				fsum += n
			}
			faults += fsum
			fmt.Fprintf(&sb, "  campaign %d: seed=0x%X faults=%d%s outcome=%s injected=%d delivered=%d violations=%d%s",
				ci, c.spec.Seed, fsum,
				kindList(c.faults[:], func(i int) fault.Kind { return fault.Kind(i) }),
				c.out, c.injected, c.delivered, c.total,
				kindList(c.counts[:], func(i int) check.Kind { return check.Kind(i) }))
			if c.undeliverable > 0 {
				fmt.Fprintf(&sb, " undeliverable=%d", c.undeliverable)
			}
			if c.epochs > 0 {
				fmt.Fprintf(&sb, " epochs=%d@%d", c.epochs, c.lastEpoch)
			}
			if c.escalated > 0 {
				fmt.Fprintf(&sb, " escalated=%d", c.escalated)
			}
			if c.retransmits > 0 || c.exhausted > 0 {
				fmt.Fprintf(&sb, " rtx=%d/%d", c.retransmits, c.exhausted)
			}
			if c.why != "" && c.why != "violations" {
				fmt.Fprintf(&sb, " (%s)", c.why)
			}
			fmt.Fprintln(&sb)
		}
		fmt.Fprintf(&sb, "  summary: clean=%d masked=%d detected=%d degraded=%d undetected=%d faults=%d\n",
			tally[outClean], tally[outMasked], tally[outDetected], tally[outDegraded], tally[outUndetected], faults)
	}
	fmt.Fprintf(&sb, "overall: campaigns=%d clean=%d masked=%d detected=%d degraded=%d undetected=%d\n",
		len(archs)**campaigns, overall[outClean], overall[outMasked], overall[outDetected], overall[outDegraded], overall[outUndetected])
	if overall[outUndetected] > 0 {
		fmt.Fprintf(&sb, "WARNING: undetected loss — the invariant layer missed faults it should catch\n")
	}

	report := sb.String()
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("noxfault: report written to %s (%d campaigns)\n", *out, len(archs)**campaigns)
	} else {
		fmt.Print(report)
	}
}
