// Command noxapp regenerates Figures 10 and 11: application-trace latency
// and energy-delay^2 for all four router architectures, replaying
// synthesized cache-coherence traces on two physical networks.
//
// Usage:
//
//	noxapp                       # both figures, all workloads
//	noxapp -figure 11 -workload tpcc
//	noxapp -cpu-cycles 20000     # shorter traces
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/harness"
	"repro/internal/probe"
	"repro/internal/router"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/version"
)

func main() {
	var (
		figure    = flag.Int("figure", 0, "figure to regenerate: 10 (latency), 11 (energy-delay^2), 0 = both")
		workload  = flag.String("workload", "all", "workload name or 'all'")
		cpuCycles = flag.Int64("cpu-cycles", 40000, "trace length in 3 GHz CPU cycles")
		csv       = flag.Bool("csv", false, "emit machine-readable CSV instead of tables")
		seed      = flag.Uint64("seed", 1234, "trace generation seed")
		parallel  = flag.Int("parallel", 0, "worker count for per-architecture replays (0 = all CPUs, 1 = serial; output is identical)")
		shards    = flag.Int("shards", 0, "intra-simulation worker shards per network (0 = auto, 1 = serial; output is identical)")
		ckptDir   = flag.String("checkpoint", "", "persist a resumable checkpoint per (workload, architecture) replay into this directory (atomic overwrite)")
		ckptEvery = flag.Int64("checkpoint-every", 20000, "checkpoint period in network cycles (with -checkpoint)")
		restore   = flag.String("restore", "", "resume replays from checkpoints in this directory; replays without a checkpoint cold-start")
		warm      = flag.Bool("warmstart", false, "not applicable to open-loop trace replay (errors with guidance; see -checkpoint/-restore)")
	)
	tf := telemetry.AddFlags(flag.CommandLine)
	prof := probe.AddProfileFlags(flag.CommandLine)
	ver := version.Flag(flag.CommandLine)
	flag.Parse()
	version.ExitIf(*ver, "noxapp")
	sess, err := tf.Start("noxapp")
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxapp:", err)
		os.Exit(1)
	}
	defer sess.Close()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxapp:", err)
		os.Exit(1)
	}
	defer stopProf()
	pool, err := exp.PoolFromFlag(*parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "noxapp:", err)
		os.Exit(1)
	}
	if *warm {
		fmt.Fprintln(os.Stderr, "noxapp: -warmstart: application traces replay open-loop with no shared warm-up phase — every event is injected at its trace timestamp. Use -checkpoint/-restore to make replays resumable, or noxsweep -warmstart for synthetic sweeps.")
		os.Exit(1)
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "noxapp:", err)
			os.Exit(1)
		}
	}

	workloads := trace.Workloads
	if *workload != "all" {
		w, err := trace.WorkloadByName(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "noxapp:", err)
			os.Exit(1)
		}
		workloads = []trace.Workload{w}
	}

	var results []map[router.Arch]harness.AppResult
	topo := harness.Table1().Topo
	for _, w := range workloads {
		tr := trace.Generate(w, topo, *cpuCycles, *seed)
		fmt.Printf("replaying %-8s (%6d packets, offered %6.0f MB/s/node)\n",
			w.Name, len(tr.Events), tr.MeanInjectionMBps())
		results = append(results, harness.RunAppAllArchs(tr, 0, pool, *shards,
			harness.Telemetry{Progress: sess.Sampler(), NewRecorder: sess.NewRecorder},
			harness.AppCheckpoint{Dir: *ckptDir, Every: *ckptEvery, RestoreDir: *restore}))
	}
	fmt.Println()
	if *csv {
		fmt.Print(harness.AppCSV(results))
		return
	}
	if *figure == 0 || *figure == 10 {
		fmt.Print(harness.FormatAppLatency(results))
		fmt.Println()
	}
	if *figure == 0 || *figure == 11 {
		fmt.Print(harness.FormatAppED2(results))
	}
}
