// Package noxnet is a from-scratch Go reproduction of "The NoX Router"
// (Hayenga & Lipasti, MICRO-44, 2011): a cycle-accurate wormhole
// network-on-chip simulator with four router microarchitectures — the
// XOR-coded NoX router plus its non-speculative and speculative baselines —
// together with the paper's synthetic and application workloads and its
// power, timing, and area models.
//
// The package is a thin facade over the internal packages; it exposes
// everything a user needs to build networks, drive the paper's experiments,
// and reproduce every table and figure in the evaluation. See README.md for
// a tour, DESIGN.md for the system inventory, and EXPERIMENTS.md for
// paper-versus-measured results.
//
// # Quick start
//
//	net := noxnet.NewNetwork(noxnet.NetworkConfig{Arch: noxnet.NoX})
//	p := net.Inject(0, 63, 1, 0)
//	net.Drain(1000)
//	fmt.Println("latency cycles:", p.Latency())
//
// Or run a complete paper experiment:
//
//	res, err := noxnet.RunSynthetic(noxnet.SyntheticConfig{
//		Arch:     noxnet.NoX,
//		Pattern:  "uniform",
//		RateMBps: 2000,
//	})
package noxnet

import (
	"repro/internal/check"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/physical"
	"repro/internal/power"
	"repro/internal/probe"
	"repro/internal/router"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Arch selects a router microarchitecture (§3, Table 2).
type Arch = router.Arch

// The four router architectures evaluated by the paper.
const (
	// NonSpec is the sequential baseline: arbitrate then traverse within
	// one 0.92 ns cycle.
	NonSpec = router.NonSpec
	// SpecFast is the minimal-clock speculative router (0.69 ns).
	SpecFast = router.SpecFast
	// SpecAccurate is the accurate-scheduling speculative router (0.72 ns).
	SpecAccurate = router.SpecAccurate
	// NoX is the XOR-coded router of the paper (0.76 ns).
	NoX = router.NoX
)

// Archs lists all architectures in the paper's order.
var Archs = router.Archs

// Core network types.
type (
	// Topology is a 2-D mesh shape.
	Topology = noc.Topology
	// NodeID identifies a tile.
	NodeID = noc.NodeID
	// Packet is a unit of transfer; payloads are carried bit-exactly.
	Packet = noc.Packet
	// Network is a complete mesh NoC of one architecture.
	Network = network.Network
	// NetworkConfig parameterizes NewNetwork.
	NetworkConfig = network.Config
)

// NewNetwork builds a wired mesh network (defaults: 8x8, 4-flit buffers).
// It panics on an invalid configuration; BuildNetwork is the
// error-returning form for configurations assembled from user input.
func NewNetwork(cfg NetworkConfig) *Network { return network.New(cfg) }

// BuildNetwork validates and builds a network, returning ErrBadConfig-
// wrapped errors instead of panicking.
func BuildNetwork(cfg NetworkConfig) (*Network, error) { return network.Build(cfg) }

// ErrBadConfig is wrapped by every network configuration rejection.
var ErrBadConfig = network.ErrBadConfig

// ErrBadPacket is wrapped by Network.InjectChecked's rejections.
var ErrBadPacket = network.ErrBadPacket

// ErrNoProgress is wrapped by Network.DrainChecked when the watchdog
// declares the network wedged (deadlock, livelock, or drain-limit); the
// error message embeds a full diagnostic dump of the stuck state.
var ErrNoProgress = network.ErrNoProgress

// Robustness layer: runtime invariant checking and deterministic fault
// injection. Arm a network by setting NetworkConfig.Check (and optionally
// NetworkConfig.Fault); see cmd/noxfault for campaign automation.
type (
	// Checker is the runtime invariant layer: the end-to-end delivery
	// oracle, NoX protocol assertions, and post-drain conservation checks.
	Checker = check.Checker
	// CheckConfig selects which invariant families a Checker arms.
	CheckConfig = check.Config
	// Violation is one recorded invariant failure.
	Violation = check.Violation
	// FaultSpec is a replayable fault-campaign description (rates, window,
	// seed); campaigns are deterministic and shard-invariant.
	FaultSpec = fault.Spec
	// FaultInjector drives channel-level faults on one network.
	FaultInjector = fault.Injector
)

// NewChecker builds a runtime invariant checker to pass in
// NetworkConfig.Check.
func NewChecker(cfg CheckConfig) *Checker { return check.New(cfg) }

// AllChecks returns a CheckConfig with every invariant family armed.
func AllChecks() CheckConfig { return check.All() }

// NewFaultInjector builds an injector for the spec to pass in
// NetworkConfig.Fault (which also requires NetworkConfig.Check). It panics
// on an invalid spec; validate with FaultSpec.Validate first when the spec
// comes from user input.
func NewFaultInjector(spec FaultSpec) *FaultInjector { return fault.NewInjector(spec) }

// Observability types: flit-level tracing and per-router metrics. Set
// NetworkConfig.Probe to instrument a network; a nil probe disables all
// instrumentation at zero cost. See cmd/noxtrace for the command-line tool.
type (
	// Probe records a simulation's flit-level event stream and per-router
	// metrics, exportable as a Chrome/Perfetto trace, a textual waveform,
	// and CSV summaries.
	Probe = probe.Probe
	// ProbeConfig parameterizes a Probe (ring capacity, sampling interval,
	// timestamp scaling).
	ProbeConfig = probe.Config
	// ProbeEvent is one recorded microarchitectural event.
	ProbeEvent = probe.Event
)

// NewProbe builds an observability probe to pass in NetworkConfig.Probe.
func NewProbe(cfg ProbeConfig) *Probe { return probe.New(cfg) }

// Experiment harness types (Figures 8-12).
type (
	// SyntheticConfig parameterizes a synthetic-traffic run (§5.1).
	SyntheticConfig = harness.SyntheticConfig
	// RunResult is a synthetic run's latency/throughput/energy outcome.
	RunResult = harness.RunResult
	// SweepPoint is one offered-rate point of a Figure 8/9 sweep.
	SweepPoint = harness.SweepPoint
	// AppConfig parameterizes an application-trace replay (§5.2).
	AppConfig = harness.AppConfig
	// AppResult is an application run's outcome (Figures 10/11).
	AppResult = harness.AppResult
	// Workload is an application traffic profile.
	Workload = trace.Workload
	// Trace is a generated application trace.
	Trace = trace.Trace
	// SystemConfig mirrors Table 1.
	SystemConfig = harness.SystemConfig
	// EnergyModel maps datapath events to picojoules.
	EnergyModel = power.Model
	// EnergyCounters accumulates datapath events.
	EnergyCounters = power.Counters
)

// Pool is a deterministic worker pool for running independent experiment
// points concurrently. A nil *Pool runs everything serially.
type Pool = exp.Pool

// NewPool builds a pool with the given worker count; workers <= 0 sizes it
// to the available CPUs. Parallel experiment results are bit-identical to
// serial ones.
func NewPool(workers int) *Pool { return exp.NewPool(workers) }

// ErrRateInfeasible marks an offered rate the architecture's clock cannot
// physically inject (over one flit per cycle per node); sweeps treat it as
// the natural end of that architecture's curve, not a failure.
var ErrRateInfeasible = harness.ErrRateInfeasible

// RunSynthetic executes one (architecture, pattern, rate) point.
func RunSynthetic(cfg SyntheticConfig) (RunResult, error) { return harness.RunSynthetic(cfg) }

// SweepSynthetic sweeps all architectures across offered rates (Figs. 8/9).
// A multi-worker pool runs the points concurrently with output identical to
// the serial sweep; pass nil to run serially.
func SweepSynthetic(base SyntheticConfig, rates []float64, pool *Pool) ([]SweepPoint, error) {
	return harness.SweepSynthetic(base, rates, pool)
}

// DefaultRates returns a sensible sweep ladder for a pattern on the 8x8
// system.
func DefaultRates(pattern string) []float64 { return harness.DefaultRates(pattern) }

// RunApp replays an application trace on one architecture (Figs. 10/11).
func RunApp(cfg AppConfig) AppResult { return harness.RunApp(cfg) }

// GenerateTrace synthesizes a deterministic application trace.
func GenerateTrace(w Workload, topo Topology, cpuCycles int64, seed uint64) *Trace {
	return trace.Generate(w, topo, cpuCycles, seed)
}

// Workloads lists the evaluated application profiles.
func Workloads() []Workload { return trace.Workloads }

// WorkloadByName returns the named application profile.
func WorkloadByName(name string) (Workload, error) { return trace.WorkloadByName(name) }

// PatternNames lists the synthetic patterns of Figures 8/9.
func PatternNames() []string { return traffic.PatternNames }

// Table1 returns the paper's common system parameters.
func Table1() SystemConfig { return harness.Table1() }

// ClockPeriodNs returns an architecture's Table 2 clock period.
func ClockPeriodNs(a Arch) float64 { return physical.ClockPeriodNs(a) }

// DefaultEnergyModel returns the calibrated 65 nm energy model.
func DefaultEnergyModel() EnergyModel { return power.DefaultModel() }

// Future-work study (§8): 64 cores as baseline mesh vs 4x4 concentrated
// mesh with radix-8 routers.
type (
	// SystemKind selects a 64-core organization (Mesh8x8 or CMesh4x4).
	SystemKind = harness.SystemKind
	// FutureConfig parameterizes one future-work run.
	FutureConfig = harness.FutureConfig
	// FutureStudy holds the mesh-vs-CMesh comparison results.
	FutureStudy = harness.FutureStudy
)

// The two 64-core organizations of the §8 study.
const (
	// Mesh8x8 is the paper's baseline organization.
	Mesh8x8 = harness.Mesh8x8
	// CMesh4x4 is the higher-radix concentrated mesh.
	CMesh4x4 = harness.CMesh4x4
)

// RunFuture executes one future-work point (system, architecture, rate).
func RunFuture(cfg FutureConfig) (RunResult, error) { return harness.RunFuture(cfg) }

// RunFutureStudy compares all architectures on both 64-core organizations.
// A multi-worker pool fans the points out; pass nil to run serially.
func RunFutureStudy(rates []float64, pattern string, seed uint64, pool *Pool) (*FutureStudy, error) {
	return harness.RunFutureStudy(rates, pattern, seed, pool)
}
