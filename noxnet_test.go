package noxnet_test

import (
	"testing"

	noxnet "repro"
)

// TestFacadeQuickstart exercises the README quick-start path through the
// public API only.
func TestFacadeQuickstart(t *testing.T) {
	net := noxnet.NewNetwork(noxnet.NetworkConfig{Arch: noxnet.NoX})
	p := net.Inject(0, 63, 1, 0)
	if !net.Drain(1000) {
		t.Fatal("packet did not drain")
	}
	if p.Latency() <= 0 {
		t.Fatal("latency not recorded")
	}
}

// TestFacadeTable2 checks the re-exported physical model.
func TestFacadeTable2(t *testing.T) {
	want := map[noxnet.Arch]float64{
		noxnet.NonSpec: 0.92, noxnet.SpecFast: 0.69, noxnet.SpecAccurate: 0.72, noxnet.NoX: 0.76,
	}
	for arch, ns := range want {
		if got := noxnet.ClockPeriodNs(arch); got != ns {
			t.Errorf("%v period %v != %v", arch, got, ns)
		}
	}
	if len(noxnet.Archs) != 4 {
		t.Error("Archs should list all four architectures")
	}
}

// TestFacadeSynthetic runs one public-API synthetic experiment.
func TestFacadeSynthetic(t *testing.T) {
	res, err := noxnet.RunSynthetic(noxnet.SyntheticConfig{
		Arch:          noxnet.NoX,
		Pattern:       "uniform",
		RateMBps:      800,
		WarmupCycles:  500,
		MeasureCycles: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated || res.MeanLatencyNs <= 0 {
		t.Errorf("unexpected result: %+v", res)
	}
}

// TestFacadeApp runs one public-API application experiment.
func TestFacadeApp(t *testing.T) {
	w, err := noxnet.WorkloadByName("water")
	if err != nil {
		t.Fatal(err)
	}
	tr := noxnet.GenerateTrace(w, noxnet.Table1().Topo, 4000, 5)
	res := noxnet.RunApp(noxnet.AppConfig{Arch: noxnet.SpecAccurate, Trace: tr})
	if !res.Drained || res.MeanLatencyNs <= 0 {
		t.Errorf("unexpected app result: %+v", res)
	}
}

// TestFacadeInventory checks the workload and pattern listings.
func TestFacadeInventory(t *testing.T) {
	if len(noxnet.Workloads()) != 8 {
		t.Errorf("want 8 workloads, got %d", len(noxnet.Workloads()))
	}
	if len(noxnet.PatternNames()) < 5 {
		t.Error("pattern list suspiciously short")
	}
	if m := noxnet.DefaultEnergyModel(); m.LinkPJ <= m.XbarPJ {
		t.Error("link energy should dominate crossbar energy")
	}
	cfg := noxnet.Table1()
	if cfg.Cores != 64 || cfg.Topo.Width != 8 {
		t.Errorf("Table 1 mismatch: %+v", cfg)
	}
}
