package noxnet

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark iteration regenerates the corresponding result at reduced scale
// (short measurement windows, a subset of sweep points) so `go test
// -bench=.` exercises every experiment path in minutes; the cmd/ tools run
// the full-scale versions. The reported custom metrics carry the headline
// numbers so a bench run doubles as a smoke reproduction.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/batch"
	"repro/internal/exp"
	"repro/internal/harness"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/physical"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// benchPool runs experiment benchmarks at the machine's full parallelism;
// results are bit-identical to serial runs.
var benchPool = exp.NewPool(0)

// BenchmarkTable1SystemParameters renders the Table 1 configuration.
func BenchmarkTable1SystemParameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := harness.Table1().String(); len(s) == 0 {
			b.Fatal("empty Table 1")
		}
	}
}

// BenchmarkTable2ClockPeriods evaluates the critical-path timing model for
// all architectures and verifies the published periods.
func BenchmarkTable2ClockPeriods(b *testing.B) {
	want := map[router.Arch]float64{
		router.NonSpec: 0.92, router.SpecFast: 0.69, router.SpecAccurate: 0.72, router.NoX: 0.76,
	}
	for i := 0; i < b.N; i++ {
		for arch, ns := range want {
			if got := physical.ClockPeriodNs(arch); got < ns-1e-9 || got > ns+1e-9 {
				b.Fatalf("%v period %v != %v", arch, got, ns)
			}
		}
	}
}

// benchSweep runs a reduced Figure 8/9 sweep on one pattern.
func benchSweep(b *testing.B, pattern string) []harness.SweepPoint {
	b.Helper()
	base := harness.SyntheticConfig{
		Pattern:       pattern,
		WarmupCycles:  800,
		MeasureCycles: 2000,
		DrainCycles:   8000,
	}
	points, err := harness.SweepSynthetic(base, []float64{600, 1800, 3000}, benchPool)
	if err != nil {
		b.Fatal(err)
	}
	return points
}

// BenchmarkFigure8SyntheticLatency regenerates a reduced uniform-random
// latency-vs-load sweep across all four architectures and reports NoX's
// saturation throughput.
func BenchmarkFigure8SyntheticLatency(b *testing.B) {
	var noxSat float64
	for i := 0; i < b.N; i++ {
		points := benchSweep(b, "uniform")
		noxSat = harness.SaturationMBps(points)[router.NoX]
	}
	b.ReportMetric(noxSat, "NoX-sat-MB/s/node")
}

// BenchmarkFigure9SyntheticEnergyDelay2 regenerates a reduced
// energy-delay^2 sweep and reports NoX's ED^2 at 1.8 GB/s/node.
func BenchmarkFigure9SyntheticEnergyDelay2(b *testing.B) {
	var ed2 float64
	for i := 0; i < b.N; i++ {
		points := benchSweep(b, "uniform")
		for _, pt := range points {
			if pt.RateMBps == 1800 {
				ed2 = pt.Results[router.NoX].EnergyDelay2
			}
		}
	}
	b.ReportMetric(ed2, "NoX-ED2-pJns2")
}

// benchAppResults replays one short application trace on all architectures.
func benchAppResults(b *testing.B, workload string) map[router.Arch]harness.AppResult {
	b.Helper()
	w, err := trace.WorkloadByName(workload)
	if err != nil {
		b.Fatal(err)
	}
	tr := trace.Generate(w, harness.Table1().Topo, 8000, 7)
	return harness.RunAppAllArchs(tr, 0, benchPool, 0, harness.Telemetry{}, harness.AppCheckpoint{})
}

// BenchmarkFigure10ApplicationLatency regenerates one workload's Figure 10
// bar group and reports the NoX latency.
func BenchmarkFigure10ApplicationLatency(b *testing.B) {
	var lat float64
	for i := 0; i < b.N; i++ {
		lat = benchAppResults(b, "tpcc")[router.NoX].MeanLatencyNs
	}
	b.ReportMetric(lat, "NoX-latency-ns")
}

// BenchmarkFigure11ApplicationEnergyDelay2 regenerates one workload's
// Figure 11 bar group and reports NoX's improvement over Spec-Accurate.
func BenchmarkFigure11ApplicationEnergyDelay2(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		res := benchAppResults(b, "tpcc")
		imp = 100 * (1 - res[router.NoX].EnergyDelay2/res[router.SpecAccurate].EnergyDelay2)
	}
	b.ReportMetric(imp, "NoX-vs-SpecAcc-%")
}

// BenchmarkFigure12PowerBreakdown regenerates the 2 GB/s/node uniform power
// comparison and reports NoX's link power share (paper: ~74%).
func BenchmarkFigure12PowerBreakdown(b *testing.B) {
	var linkShare float64
	for i := 0; i < b.N; i++ {
		res, err := harness.RunSynthetic(harness.SyntheticConfig{
			Arch: router.NoX, Pattern: "uniform", RateMBps: 2000,
			WarmupCycles: 800, MeasureCycles: 2500,
		})
		if err != nil {
			b.Fatal(err)
		}
		linkShare = 100 * res.Energy.LinkShare()
	}
	b.ReportMetric(linkShare, "link-power-%")
}

// BenchmarkFigure13Floorplan evaluates the area model and reports the NoX
// tile overhead (paper: 17.2%).
func BenchmarkFigure13Floorplan(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		overhead = 100 * physical.AreaOverheadVsConventional()
	}
	b.ReportMetric(overhead, "NoX-area-%")
}

// BenchmarkNetworkCycle measures raw simulator speed: one cycle of a fully
// loaded 8x8 network, per architecture. The network is preloaded with
// wormhole traffic and warmed before the timer starts so the measurement is
// the loaded per-cycle cost the name promises — construction is excluded.
// (Earlier snapshots predate the ResetTimer and fold construction in; see
// the Performance section of EXPERIMENTS.md before comparing across that
// boundary.)
func BenchmarkNetworkCycle(b *testing.B) {
	for _, arch := range router.Archs {
		b.Run(arch.String(), func(b *testing.B) {
			net := network.New(network.Config{Arch: arch})
			rng := sim.NewRNG(1)
			topo := net.Topology()
			// Preload meaningful traffic and keep it flowing.
			for n := 0; n < topo.Nodes(); n++ {
				dst := noc.NodeID(rng.Intn(topo.Nodes()))
				if dst != noc.NodeID(n) {
					net.Inject(noc.NodeID(n), dst, 8, 0)
				}
			}
			for i := 0; i < 100; i++ {
				net.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%4 == 0 {
					src := noc.NodeID(rng.Intn(topo.Nodes()))
					dst := noc.NodeID(rng.Intn(topo.Nodes()))
					if src != dst {
						net.Inject(src, dst, 1, 0)
					}
				}
				net.Step()
			}
		})
	}
}

// BenchmarkNetworkCycleSteady isolates the steady-state per-cycle cost:
// construction, packet creation, and arena warmup all happen before
// ResetTimer, so the timed region is pure datapath — flits recycle through
// the arenas, FIFOs reuse their rings, and the allocs/op column must read 0.
// The network is saturated with long wormhole packets so every measured
// cycle does real switching work. The flight recorder shadows the run the
// way the cmd tools arm it by default, so the 0 allocs/op gate also proves
// the recorder's ring is allocation-free in steady state.
func BenchmarkNetworkCycleSteady(b *testing.B) {
	for _, arch := range router.Archs {
		b.Run(arch.String(), func(b *testing.B) {
			rec := telemetry.NewRecorder(telemetry.RecorderConfig{
				Dir: b.TempDir(), Label: "bench-" + arch.String(),
				PeriodNs: physical.ClockPeriodNs(arch),
			})
			net := network.New(network.Config{Arch: arch, Probe: rec.Probe()})
			rng := sim.NewRNG(1)
			topo := net.Topology()
			for n := 0; n < topo.Nodes(); n++ {
				for k := 0; k < 4; k++ {
					dst := noc.NodeID(rng.Intn(topo.Nodes()))
					if dst != noc.NodeID(n) {
						net.Inject(noc.NodeID(n), dst, 64, 0)
					}
				}
			}
			// Warm the arenas and reach a flowing steady state.
			for i := 0; i < 200; i++ {
				net.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Step()
			}
		})
	}
}

// BenchmarkNetworkCycleLarge measures one loaded cycle on big meshes —
// the scaling case the sharded executor exists for — at several worker
// counts. shards=1 is the serial kernel; on a multicore host wall-clock
// drops as shards rise (on one CPU all counts run within noise, since the
// pool never dispatches in parallel). Results are bit-identical across the
// row; only the wall clock moves.
func BenchmarkNetworkCycleLarge(b *testing.B) {
	for _, side := range []int{16, 32} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("NoX-%dx%d/shards=%d", side, side, shards), func(b *testing.B) {
				net := network.New(network.Config{
					Topo:   noc.Topology{Width: side, Height: side},
					Arch:   router.NoX,
					Shards: shards,
				})
				defer net.Close()
				rng := sim.NewRNG(1)
				cores := net.Cores()
				// Load proportional to mesh size so per-cycle work scales.
				perCycle := cores / 16
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for j := 0; j < perCycle; j++ {
						src := noc.NodeID(rng.Intn(cores))
						dst := noc.NodeID(rng.Intn(cores))
						if src != dst {
							net.Inject(src, dst, 1, 0)
						}
					}
					net.Step()
				}
			})
		}
	}
}

// BenchmarkNetworkCycleIdle measures an idle cycle on a drained 8x8
// network — the case the kernel's quiescence fast path exists for. The
// "eager" variants (Config.AlwaysActive) are the old always-evaluate
// behavior for comparison.
func BenchmarkNetworkCycleIdle(b *testing.B) {
	for _, arch := range router.Archs {
		for _, mode := range []struct {
			name   string
			always bool
		}{{"quiesce", false}, {"eager", true}} {
			b.Run(arch.String()+"/"+mode.name, func(b *testing.B) {
				net := network.New(network.Config{Arch: arch, AlwaysActive: mode.always})
				// A little traffic first so the network reaches idle from a
				// realistic state rather than pristine construction.
				net.Inject(0, 63, 3, 0)
				net.Inject(27, 36, 1, 0)
				if !net.Drain(500) {
					b.Fatal("warmup did not drain")
				}
				for i := 0; i < 8; i++ {
					net.Step()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					net.Step()
				}
			})
		}
	}
}

// BenchmarkNetworkCycleSparse measures the light-load per-cycle cost the
// event-horizon kernel exists for: an 8x8 network carrying one single-flit
// packet every 16 cycles (~0.1% per-node injection), so at any instant a
// handful of components along one path are busy and everything else is
// parked. The "event" variant is the shipping fast path — next-wake
// scheduling plus the sparse bitmap walk plus port-granular dirty masks;
// "eager" (Config.AlwaysActive) evaluates every component every cycle, the
// pre-event-horizon behavior. The injection schedule is identical on both
// sides, so the ratio is pure kernel overhead.
func BenchmarkNetworkCycleSparse(b *testing.B) {
	for _, arch := range router.Archs {
		for _, mode := range []struct {
			name   string
			always bool
		}{{"event", false}, {"eager", true}} {
			b.Run(arch.String()+"/"+mode.name, func(b *testing.B) {
				net := network.New(network.Config{Arch: arch, AlwaysActive: mode.always})
				rng := sim.NewRNG(7)
				cores := net.Cores()
				// Reach steady sparse flow from a realistic state: a little
				// traffic, fully drained, arenas warm.
				net.Inject(0, 63, 3, 0)
				net.Inject(27, 36, 1, 0)
				if !net.Drain(500) {
					b.Fatal("warmup did not drain")
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i%16 == 0 {
						src := noc.NodeID(rng.Intn(cores))
						dst := noc.NodeID(rng.Intn(cores))
						if src != dst {
							net.Inject(src, dst, 1, 0)
						}
					}
					net.Step()
				}
			})
		}
	}
}

// BenchmarkBatchedSweep measures many-seed experiment throughput: N
// complete synthetic points (8x8 NoX, light uniform load, N distinct
// seeds) run to completion, comparing the per-point worker-pool engine
// (each simulation alone on a pool worker) against the batched lockstep
// kernel (cohorts of the default width, shared construction,
// density-adaptive stepping: member-major lane walks while traffic flows,
// bit-sliced column skips through drain tails). Outputs are byte-identical
// on both paths; divide ns/op by N for per-simulation cost.
func BenchmarkBatchedSweep(b *testing.B) {
	mkCfgs := func(n int) []harness.SyntheticConfig {
		cfgs := make([]harness.SyntheticConfig, n)
		for i := range cfgs {
			cfgs[i] = harness.SyntheticConfig{
				Arch: router.NoX, Pattern: "uniform", RateMBps: 900,
				WarmupCycles: 200, MeasureCycles: 600, DrainCycles: 4000,
				Seed: 0xA11CE + uint64(i)*101, Shards: 1,
			}
		}
		return cfgs
	}
	for _, n := range []int{1, 8, 64} {
		cfgs := mkCfgs(n)
		b.Run(fmt.Sprintf("pool/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := exp.Map(context.Background(), benchPool, len(cfgs),
					func(_ context.Context, j int) (harness.RunResult, error) {
						return harness.RunSynthetic(cfgs[j])
					})
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != n {
					b.Fatal("short result set")
				}
			}
		})
		b.Run(fmt.Sprintf("batched/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				done := 0
				for _, span := range batch.Chunks(len(cfgs), 0) {
					res, errs := harness.RunSyntheticCohort(cfgs[span[0]:span[1]])
					for _, err := range errs {
						if err != nil {
							b.Fatal(err)
						}
					}
					done += len(res)
				}
				if done != n {
					b.Fatal("short result set")
				}
			}
		})
	}
}

// BenchmarkWarmStartSweep measures the checkpoint/fork payoff on a
// warm-up-dominated sweep, the shape the low rungs of the Figure 8 ladder
// have: cold re-runs the 3000-cycle warm phase for every (arch, rate)
// point, warm runs it once per architecture, snapshots the complete
// simulation state, and forks every rate point from the copy. Both paths
// render byte-identical CSV (pinned here and in the harness tests), so the
// cold/warm ns/op ratio is pure wall-clock saved. Serial on purpose — a
// pool would overlap the redundant warm-ups and hide the work the
// snapshot path eliminates.
func BenchmarkWarmStartSweep(b *testing.B) {
	base := harness.SyntheticConfig{
		Pattern: "uniform", Seed: 0xA11CE, Shards: 1,
		WarmupCycles: 3000, MeasureCycles: 600, DrainCycles: 8000,
		WarmRateMBps: 600,
	}
	rates := []float64{400, 600, 800, 1000}
	warm := base
	warm.WarmStart = true
	var coldCSV, warmCSV string
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pts, err := harness.SweepSynthetic(base, rates, nil)
			if err != nil {
				b.Fatal(err)
			}
			coldCSV = harness.SweepCSV("uniform", pts)
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pts, err := harness.SweepSynthetic(warm, rates, nil)
			if err != nil {
				b.Fatal(err)
			}
			warmCSV = harness.SweepCSV("uniform", pts)
		}
	})
	if coldCSV != "" && warmCSV != "" && coldCSV != warmCSV {
		b.Fatal("warm-start sweep CSV diverged from the cold sweep")
	}
}

// BenchmarkBatchedStepSteady isolates the steady-state lockstep stepping
// cost: an N-member NoX cohort is built, loaded with long wormhole
// traffic, and warmed before ResetTimer, so the timed region is pure
// batched datapath — saturated members take the member-major dense walk,
// member arenas recycle flits carved from the shared block pool. Divide
// ns/op by N for the per-simulation cycle cost; allocs/op must read 0.
func BenchmarkBatchedStepSteady(b *testing.B) {
	for _, n := range []int{8, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			c, err := batch.New(n, func(int) network.Config {
				return network.Config{Arch: router.NoX, Shards: 1}
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			for m := 0; m < n; m++ {
				net := c.Net(m)
				rng := sim.NewRNG(uint64(m) + 1)
				topo := net.Topology()
				for node := 0; node < topo.Nodes(); node++ {
					for k := 0; k < 4; k++ {
						dst := noc.NodeID(rng.Intn(topo.Nodes()))
						if dst != noc.NodeID(node) {
							net.Inject(noc.NodeID(node), dst, 64, 0)
						}
					}
				}
			}
			// Warm the arenas and reach a flowing steady state.
			for i := 0; i < 200; i++ {
				c.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Step()
			}
		})
	}
}

// BenchmarkXORChain measures the core mechanism in isolation: a 5-way
// collision fully resolved through encode/decode at a hot output.
func BenchmarkXORChain(b *testing.B) {
	topo := noc.Topology{Width: 4, Height: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net := network.New(network.Config{Topo: topo, Arch: router.NoX})
		for id := 1; id <= 5; id++ {
			net.Inject(noc.NodeID(id), 12, 1, 0)
		}
		if !net.Drain(500) {
			b.Fatal("chain did not drain")
		}
	}
}

// BenchmarkSection8FutureWork regenerates a reduced mesh-vs-CMesh
// comparison (the paper's §8 proposal) and reports how much NoX's latency
// standing against Spec-Accurate improves at higher radix.
func BenchmarkSection8FutureWork(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		st, err := harness.RunFutureStudy([]float64{500}, "uniform", 1, benchPool)
		if err != nil {
			b.Fatal(err)
		}
		mesh, ok1 := st.NoXGapVsSpecAccurate(harness.Mesh8x8, 500)
		cmesh, ok2 := st.NoXGapVsSpecAccurate(harness.CMesh4x4, 500)
		if !ok1 || !ok2 {
			b.Fatal("study points missing")
		}
		improvement = 100 * (mesh - cmesh)
	}
	b.ReportMetric(improvement, "NoX-gain-on-CMesh-pp")
}
